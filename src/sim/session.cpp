#include "sim/session.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <functional>
#include <utility>

#include "core/labeling.h"
#include "sim/active_set.h"
#include "sim/arena.h"
#include "sim/cell_exec.h"
#include "sim/fnv.h"
#include "sim/link_state.h"
#include "sim/serial.h"

namespace syscomm::sim {

const char*
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::kCompleted:
        return "completed";
      case RunStatus::kDeadlocked:
        return "deadlocked";
      case RunStatus::kMaxCycles:
        return "max-cycles";
      case RunStatus::kConfigError:
        return "config-error";
      case RunStatus::kPaused:
        return "paused";
      case RunStatus::kFaulted:
        return "faulted";
    }
    return "?";
}

const char*
kernelKindName(KernelKind kind)
{
    switch (kind) {
      case KernelKind::kEventDriven:
        return "event-driven";
      case KernelKind::kReference:
        return "reference";
    }
    return "?";
}

namespace {

std::string
opText(const Program& program, const Op& op)
{
    if (op.isCompute())
        return "compute";
    return std::string(op.isWrite() ? "W(" : "R(") +
           program.message(op.msg).name + ")";
}

// Hierarchical bitmaps: O(1) insert/erase and O(levels) cursor seeks
// regardless of how many cells/links are active, so dense-active
// phases on 100k-cell arrays cost the same per mutation as sparse
// ones (the sorted-vector predecessor went quadratic there).
using LinkSet = BitIndexSet<LinkIndex, kInvalidLink>;
using CellSet = BitIndexSet<CellId, kInvalidCell>;

const std::vector<std::int64_t> kNoLabels;

/** Process-wide analysis-pass counter behind CompiledProgram::buildCount. */
std::atomic<std::int64_t> compiledBuilds{0};

/** Structural topology equality: same cells, same links, same order. */
bool
sameTopology(const Topology& a, const Topology& b)
{
    if (a.numCells() != b.numCells() || a.numLinks() != b.numLinks())
        return false;
    for (LinkIndex l = 0; l < a.numLinks(); ++l) {
        if (a.link(l).a != b.link(l).a || a.link(l).b != b.link(l).b)
            return false;
    }
    return true;
}

// Checkpoint stream framing (SimSession::saveCheckpoint).
// Version history: 2 added the fault-plan digest to the header and the
// degraded-capacity clamp to each queue's serialized scalars. 3 is
// the portable format: every scalar fixed little-endian via
// sim/serial.h, struct pools serialized field by field — a checkpoint
// written on any host restores on any other.
constexpr std::uint32_t kCheckpointMagic = 0x53594b43u; // "CKYS"
constexpr std::uint32_t kCheckpointVersion = 3;

void
saveStats(ByteWriter& w, const SimStats& s)
{
    w.put(s.cycles);
    w.put(s.wordsDelivered);
    w.put(s.wordsForwarded);
    w.put(s.opsExecuted);
    w.put(s.computeOps);
    w.put(s.assignments);
    w.put(s.releases);
    w.put(s.requests);
    w.put(s.requestWaitCycles);
    w.put(s.cellBlockedCycles);
    w.put(s.memAccesses);
    w.put(s.memStallCycles);
    w.put(s.queueBusyCycles);
    w.put(s.queueOccupancySum);
    w.put(s.extendedWords);
    w.putVector(s.perCellBlocked);
}

bool
loadStats(ByteReader& r, SimStats& s)
{
    s.cycles = r.get<Cycle>();
    s.wordsDelivered = r.get<std::int64_t>();
    s.wordsForwarded = r.get<std::int64_t>();
    s.opsExecuted = r.get<std::int64_t>();
    s.computeOps = r.get<std::int64_t>();
    s.assignments = r.get<std::int64_t>();
    s.releases = r.get<std::int64_t>();
    s.requests = r.get<std::int64_t>();
    s.requestWaitCycles = r.get<std::int64_t>();
    s.cellBlockedCycles = r.get<std::int64_t>();
    s.memAccesses = r.get<std::int64_t>();
    s.memStallCycles = r.get<std::int64_t>();
    s.queueBusyCycles = r.get<std::int64_t>();
    s.queueOccupancySum = r.get<std::int64_t>();
    s.extendedWords = r.get<std::int64_t>();
    return r.getVector(s.perCellBlocked) && r.ok();
}

} // namespace

void
saveRunResult(ByteWriter& w, const RunResult& result)
{
    w.put(result.status);
    w.put(result.cycles);
    w.putString(result.error);
    saveStats(w, result.stats);
    w.putVector(result.labelsUsed);
    const DeadlockReport& d = result.deadlock;
    w.put(d.deadlocked);
    w.put(d.atCycle);
    w.put(static_cast<std::uint64_t>(d.cells.size()));
    for (const CellBlockInfo& c : d.cells) {
        w.put(c.cell);
        w.put(c.pc);
        w.putString(c.op);
        w.putString(c.reason);
    }
    w.put(static_cast<std::uint64_t>(d.links.size()));
    for (const LinkSnapshot& l : d.links) {
        w.put(l.link);
        w.put(l.a);
        w.put(l.b);
        w.put(static_cast<std::uint64_t>(l.queues.size()));
        for (const QueueSnapshot& q : l.queues) {
            w.put(q.id);
            w.putString(q.msg);
            w.put(q.occupancy);
            w.put(q.capacity);
        }
        w.put(static_cast<std::uint64_t>(l.waiting.size()));
        for (const std::string& s : l.waiting)
            w.putString(s);
    }
    w.put(static_cast<std::uint64_t>(d.faults.size()));
    for (const FaultAttribution& f : d.faults) {
        w.put(f.eventIndex);
        w.putString(f.event);
        w.putString(f.why);
    }
}

bool
loadRunResult(ByteReader& r, RunResult& result)
{
    result = RunResult{};
    result.status = r.get<RunStatus>();
    result.cycles = r.get<Cycle>();
    if (!r.getString(result.error) || !loadStats(r, result.stats) ||
        !r.getVector(result.labelsUsed))
        return false;
    DeadlockReport& d = result.deadlock;
    d.deadlocked = r.get<bool>();
    d.atCycle = r.get<Cycle>();
    const auto numCells = r.get<std::uint64_t>();
    if (!r.ok() || numCells > r.remaining())
        return false;
    d.cells.resize(static_cast<std::size_t>(numCells));
    for (CellBlockInfo& c : d.cells) {
        c.cell = r.get<CellId>();
        c.pc = r.get<int>();
        if (!r.getString(c.op) || !r.getString(c.reason))
            return false;
    }
    const auto numLinks = r.get<std::uint64_t>();
    if (!r.ok() || numLinks > r.remaining())
        return false;
    d.links.resize(static_cast<std::size_t>(numLinks));
    for (LinkSnapshot& l : d.links) {
        l.link = r.get<LinkIndex>();
        l.a = r.get<CellId>();
        l.b = r.get<CellId>();
        const auto numQueues = r.get<std::uint64_t>();
        if (!r.ok() || numQueues > r.remaining())
            return false;
        l.queues.resize(static_cast<std::size_t>(numQueues));
        for (QueueSnapshot& q : l.queues) {
            q.id = r.get<int>();
            if (!r.getString(q.msg))
                return false;
            q.occupancy = r.get<int>();
            q.capacity = r.get<int>();
        }
        const auto numWaiting = r.get<std::uint64_t>();
        if (!r.ok() || numWaiting > r.remaining())
            return false;
        l.waiting.resize(static_cast<std::size_t>(numWaiting));
        for (std::string& s : l.waiting) {
            if (!r.getString(s))
                return false;
        }
    }
    const auto numFaults = r.get<std::uint64_t>();
    if (!r.ok() || numFaults > r.remaining())
        return false;
    d.faults.resize(static_cast<std::size_t>(numFaults));
    for (FaultAttribution& f : d.faults) {
        f.eventIndex = r.get<int>();
        if (!r.getString(f.event) || !r.getString(f.why))
            return false;
    }
    return r.ok() &&
           static_cast<int>(result.status) < kNumRunStatuses;
}

bool
peekCheckpointInfo(const std::uint8_t* data, std::size_t size,
                   CheckpointInfo& info)
{
    info = CheckpointInfo{};
    // Fixed header: magic, version, digest, kernel flag, fault-plan
    // digest, resumeFrom, cycles. Anything shorter cannot be a
    // checkpoint; reject before parsing rather than relying on the
    // reader's zero-fill (a truncated header must never produce a
    // plausible-looking info).
    constexpr std::size_t kFixedHeader = 4 + 4 + 8 + 1 + 8 + 8 + 8;
    if (data == nullptr || size < kFixedHeader)
        return false;
    ByteReader r(data, size);
    if (r.get<std::uint32_t>() != kCheckpointMagic ||
        r.get<std::uint32_t>() != kCheckpointVersion)
        return false;
    info.machineDigest = r.get<std::uint64_t>();
    info.eventKernel = r.get<std::uint8_t>() != 0;
    info.faultPlanDigest = r.get<std::uint64_t>();
    info.resumeFrom = r.get<Cycle>();
    info.cycles = r.get<Cycle>();
    if (!r.ok() || info.resumeFrom < 0 || info.cycles < 0)
        return false;
    // Per-message stream positions: getVector bounds each length
    // against the bytes actually present, and the two vectors are
    // per-message so their sizes must agree — a bit-flipped length
    // fails here instead of fabricating progress.
    if (!r.getVector(info.writeSeq) || !r.getVector(info.readSeq) ||
        info.writeSeq.size() != info.readSeq.size())
        return false;
    return r.ok();
}

// ---------------------------------------------------------------------
// CompiledProgram
// ---------------------------------------------------------------------

CompiledProgram::CompiledProgram(const Program& program,
                                 SharedTopology topo,
                                 std::vector<std::int64_t> labels,
                                 bool precompute_labels)
    : program_(program), topo_(std::move(topo))
{
    ++compiledBuilds;
    if (!labels.empty()) {
        labels_ = std::move(labels);
        labelsGiven_ = true;
    }
    validation_ = program.validate(topo_.numCells());
    if (!validation_.empty()) {
        firstError_ = "invalid program: " + validation_.front();
        return;
    }
    competing_ = CompetingAnalysis::analyze(program, topo_);

    // One pass over the route set derives every registration table a
    // session needs: crossings per link (arena span sizes), the
    // first/last-hop endpoints with their crossing indices (the
    // crossing index is simply the number of crossings registered on
    // that link so far — sessions register in this same (message,
    // hop) order), the routed links, and the program-bearing cells.
    crossingsPerLink_.assign(topo_.numLinks(), 0);
    firstHopLink_.assign(program.numMessages(), kInvalidLink);
    lastHopLink_.assign(program.numMessages(), kInvalidLink);
    firstHopCross_.assign(program.numMessages(), -1);
    lastHopCross_.assign(program.numMessages(), -1);
    for (MessageId m = 0; m < program.numMessages(); ++m) {
        const Route& route = competing_.route(m);
        for (int h = 0; h < route.numHops(); ++h) {
            const LinkIndex l = route.hops[h].link;
            const int crossIdx = crossingsPerLink_[l]++;
            if (h == 0) {
                firstHopLink_[m] = l;
                firstHopCross_[m] = crossIdx;
            }
            if (h + 1 == route.numHops()) {
                lastHopLink_[m] = l;
                lastHopCross_[m] = crossIdx;
            }
        }
    }
    for (LinkIndex l = 0; l < topo_.numLinks(); ++l) {
        if (crossingsPerLink_[l] > 0)
            routedLinksDesc_.push_back(l);
    }
    std::sort(routedLinksDesc_.begin(), routedLinksDesc_.end(),
              std::greater<LinkIndex>());
    for (CellId c = 0; c < program.numCells(); ++c) {
        if (!program.cellOps(c).empty())
            programCells_.push_back(c);
    }
    if (precompute_labels && !labelsGiven_)
        (void)this->labels();
}

std::shared_ptr<const CompiledProgram>
CompiledProgram::compile(const Program& program, SharedTopology topo,
                         std::vector<std::int64_t> labels,
                         bool precompute_labels)
{
    return std::make_shared<const CompiledProgram>(
        program, std::move(topo), std::move(labels), precompute_labels);
}

const std::vector<std::int64_t>&
CompiledProgram::labels() const
{
    if (labelsGiven_ || !valid())
        return labels_;
    std::call_once(labelsOnce_, [this] {
        Labeling labeling = labelMessages(program_);
        if (!labeling.success)
            labeling = trivialLabeling(program_);
        labels_ = labeling.normalized();
    });
    return labels_;
}

std::shared_ptr<const AnalysisReport>
CompiledProgram::analysis(const MachineSpec& spec) const
{
    AnalyzeOptions options;
    options.queuesPerLink = spec.queuesPerLink;
    options.queueCapacity = spec.queueCapacity;
    options.extensionCapacity = spec.extensionCapacity;
    std::lock_guard<std::mutex> lock(analysisMutex_);
    for (const auto& [shape, report] : analysisCache_) {
        if (shape.queuesPerLink == options.queuesPerLink &&
            shape.queueCapacity == options.queueCapacity &&
            shape.extensionCapacity == options.extensionCapacity)
            return report;
    }
    auto report = std::make_shared<const AnalysisReport>(
        analyzeProgram(program_, topo_, options));
    analysisCache_.emplace_back(options, report);
    return report;
}

std::int64_t
CompiledProgram::buildCount()
{
    return compiledBuilds.load();
}

/**
 * The simulation engine. Everything allocated here is sized once at
 * construction and reset in place by resetRun(); run() must not
 * allocate proportionally to machine size, only to what it is asked
 * to collect.
 */
struct SimSession::Impl
{
    // -----------------------------------------------------------------
    // Compile-once state (immutable across runs)
    //
    // The program-side analyses live in a CompiledProgram that may be
    // shared with other sessions (ShapeSweep builds one per sweep and
    // hands it to every per-shape session); the references below are
    // stable aliases into it, kept so the kernels read exactly as
    // they did when Impl owned these tables directly.
    // -----------------------------------------------------------------

    std::shared_ptr<const CompiledProgram> compiled;

    const Program& program;
    const MachineSpec& spec;
    SessionOptions options;

    /** Compiled program valid *and* the spec matches its topology. */
    bool configOk = false;
    std::string firstError;

    const CompetingAnalysis& competing;

    /**
     * Links at least one route crosses, descending index: the
     * forwarding order. Descending means that, for ascending routes,
     * downstream queues drain before upstream ones push into them.
     * Links no message ever crosses are never scanned — and never
     * need resetting either, so the per-run reset cost is O(routed
     * links), not O(machine).
     */
    const std::vector<LinkIndex>& routedLinksDesc;

    /**
     * Cells with a non-empty program, ascending. Only these ever
     * mutate (empty-program cells are born done and the kernels never
     * step them), so they bound the per-run cell reset.
     */
    const std::vector<CellId>& programCells;

    /**
     * Flat per-message route endpoints: the first/last hop's link and
     * the crossing's index in that link's crossing list. The sender
     * and receiver fast paths (executeWrite/executeRead) run once per
     * word per cell visit; two contiguous array loads replace a Route
     * pointer chase plus a crossing binary search there.
     */
    const std::vector<LinkIndex>& firstHopLink;
    const std::vector<LinkIndex>& lastHopLink;
    const std::vector<int>& firstHopCross;
    const std::vector<int>& lastHopCross;

    bool eventMode = false;
    int runs = 0;

    // -----------------------------------------------------------------
    // Machine state (reset in place per run)
    // -----------------------------------------------------------------

    /**
     * Owner of every hot-state object: links, queues, queue ring
     * storage, crossings and their lookup index, per-cell runtimes —
     * each a single contiguous pool (see arena.h for why). The spans
     * below are stable views into it, kept so the kernels read
     * exactly as they did when these were owning vectors.
     */
    SimArena arena;
    Span<LinkState> links;
    Span<CellRuntime> cells;

    /** Next word index each sender will write / receiver will read. */
    std::vector<int> writeSeq;
    std::vector<int> readSeq;

    RunResult result;

    // -----------------------------------------------------------------
    // Per-run configuration (set at the top of run())
    // -----------------------------------------------------------------

    AssignmentPolicy* policy = nullptr;
    const std::vector<std::int64_t>* runLabels = &kNoLabels;
    RunObserver* observer = nullptr;
    Cycle maxCycles = 0;
    bool collectEvents = false;
    bool needEvents = false; ///< events vector feeds the audit too
    bool collectReleases = false;
    bool collectTiming = false;
    bool collectReceived = false;
    bool doAudit = false;

    /**
     * One cached policy instance per PolicyKind, rebuilt only when
     * the run's labels differ from the cached copy; reseeded via
     * AssignmentPolicy::resetRun() so a reused policy is
     * indistinguishable from a freshly constructed one.
     */
    struct CachedPolicy
    {
        std::unique_ptr<AssignmentPolicy> policy;
        std::vector<std::int64_t> labels;
    };
    std::array<CachedPolicy, kNumPolicyKinds> policyCache;

    // -----------------------------------------------------------------
    // Pause/resume state (the sampled-oracle checkpoint machinery)
    // -----------------------------------------------------------------

    /** A paused run is waiting for resume(). */
    bool isPaused = false;
    /** Pause target of the executing run segment (0 = none). */
    Cycle pauseTarget = 0;
    /** First cycle the next run segment executes. */
    Cycle resumeFrom = 1;
    /**
     * Owned copy of the run labels, filled at pause (the RunRequest
     * that lent runLabels its storage may die before resume) and by
     * adoptState (the donor's labels must survive the donor).
     */
    std::vector<std::int64_t> ownedLabels;
    /**
     * Policy cloned from an adoptState donor mid-run; lives outside
     * the per-kind cache because its internal state (e.g. the random
     * policy's per-link decision counters) belongs to the adopted
     * run, not to a fresh seed.
     */
    std::unique_ptr<AssignmentPolicy> adoptedPolicy;

    // -----------------------------------------------------------------
    // Fault-injection state (RunRequest::faults). Both kernels apply
    // due plan events at the top of every executed cycle and consult
    // the derived flags below at exactly the same points, so faulted
    // runs stay bit-identical across kernels. Everything here is a
    // pure function of (plan, current cycle): checkpoints persist only
    // the machine pools (plus each queue's capacity clamp, which lives
    // in HwQueue), and restore/adopt rebuild the flags by replaying
    // the plan's already-due events.
    // -----------------------------------------------------------------

    /** The active run's plan (borrowed, like the observer). */
    const FaultPlan* faults = nullptr;
    /** Plan present and non-empty: gates every hot-path fault check. */
    bool faultsActive = false;
    /** Next plan event to apply (plan events are sorted by cycle). */
    std::size_t faultCursor = 0;
    /** Per link: killed by a fault (permanently unusable). */
    std::vector<char> linkDead;
    /** Per cell: killed by a fault (frozen, never steps again). */
    std::vector<char> cellDead;
    /** Per link: unusable while now < this (transient stall). */
    std::vector<Cycle> linkStallUntil;
    /** Stalls whose expiry still owes a wake/recheck. */
    struct ActiveStall
    {
        LinkIndex link;
        Cycle until;
    };
    std::vector<ActiveStall> activeStalls;
    /**
     * Targets the current run's plan actually touched, so the per-run
     * reset stays O(affected hardware + plan), not O(machine) — the
     * same discipline resetRun() applies to routed links. Duplicates
     * are possible (a link both stalled and killed) and harmless.
     */
    std::vector<LinkIndex> faultTouchedLinks;
    std::vector<CellId> faultTouchedCells;
    std::vector<std::pair<LinkIndex, int>> degradedQueues;

    // -----------------------------------------------------------------
    // Event-driven kernel state (unused by the reference kernel).
    //
    // The invariant behind every set here: it is always safe to wake
    // or revisit too much (a spurious visit blocks again and accounts
    // identically to the dense kernel), but never to wake too late.
    // -----------------------------------------------------------------

    /** Cells that must be visited next cellPhase, ascending id. */
    CellSet activeCells;
    int doneCells = 0;
    /** Link a sleeping cell waits on (kInvalidLink = none). */
    std::vector<LinkIndex> cellWaitLink;
    /**
     * Cells to wake on any queue event of a link, as intrusive singly
     * linked lists over two flat arrays: waiterHead[link] is the
     * first waiting cell (kInvalidCell = none), waiterNext[cell] the
     * next. A cell waits on at most one link, so the arrays are exact
     * — and they replace a vector-of-vectors whose ~per-link heap
     * blocks were the last scattered allocations on the wake path.
     * Wake order differs from the old vector order, but waiters only
     * ever get inserted into the activeCells bitmap, which is
     * order-insensitive.
     */
    std::vector<CellId> waiterHead;
    std::vector<CellId> waiterNext;
    /**
     * (cycle, cell) wake-ups for purely time-driven queue readiness.
     * Bucketed by distance: almost every timed wake is for the very
     * next cycle (a word pushed this cycle is consumable the next),
     * so those go into a flat buffer drained wholesale at the next
     * executed cycle — O(1) per wake instead of a heap push/pop on a
     * machine-sized heap. Only far wakes (extension penalties) use
     * the min-heap. The buffer never survives a fast-forward jump: a
     * non-empty buffer forces nextInterestingCycle to now + 1, so the
     * kernel cannot skip the cycle the buffer is due.
     */
    std::vector<CellId> nextCycleWakes;
    std::vector<CellId> wakeScratch;
    std::vector<std::pair<Cycle, CellId>> timedWakes;

    /** Per link: assigned, non-empty, non-final-hop queues ("hot"). */
    std::vector<int> fwdCount;
    LinkSet fwdLinks;
    /** Per link: crossings in kRequested phase (policy must run). */
    std::vector<int> pendingCount;
    LinkSet pendingLinks;
    /** Links whose state changed this cycle: re-tick the policy once. */
    std::vector<char> recheckFlag;
    std::vector<LinkIndex> recheckList;
    std::vector<LinkIndex> tickScratch;

    /**
     * Queue timed events: one (ready cycle, link, queue) entry per
     * queue front that will mature by time alone, kept as a min-heap
     * over contiguous storage. An entry is live while its queue is
     * non-empty and the front's ready cycle still equals the recorded
     * one; stale entries (the front was popped or replaced) are
     * discarded lazily at the top. This replaces the per-link
     * full-queue scans of the old timed-event check: the fast-forward
     * target is the heap top, O(1) plus amortized stale pops, instead
     * of O(non-empty links x queues per link).
     */
    struct QueueTimedEvent
    {
        Cycle ready;
        LinkIndex link;
        int queue;
    };
    std::vector<QueueTimedEvent> queueEvents;
    /**
     * Heap-ordered prefix of queueEvents; entries past it are an
     * unsorted tail appended since the last query. Scheduling on the
     * hot path is therefore a plain push_back — the heap property is
     * restored lazily (ensureQueueEventHeap) only when a
     * zero-progress cycle actually asks for the minimum.
     */
    std::size_t queueEventsHeaped = 0;
    /** Compact (drop stale entries in bulk) past this size. */
    std::size_t queueEventCompactLimit = 64;

    /** Out-params of the executors for sleep registration. */
    LinkIndex blockLink = kInvalidLink;
    Cycle blockTimedWake = -1;

    /** Per-tick scratch; tickLink runs on the per-cycle hot path. */
    std::vector<AssignmentDecision> decisionScratch;

    /**
     * High-water marks of the opt-in result vectors across this
     * session's runs: each run's vectors are moved out to the caller,
     * so without a reserve every collecting run would regrow them
     * from scratch. Reserving the largest size seen makes the reuse
     * path allocation-free in steady state.
     */
    std::size_t hwEvents = 0;
    std::size_t hwReleases = 0;

    Impl(std::shared_ptr<const CompiledProgram> c, const MachineSpec& s,
         SessionOptions o)
        : compiled(std::move(c)),
          program(compiled->program()),
          spec(s),
          options(std::move(o)),
          competing(compiled->competing()),
          routedLinksDesc(compiled->routedLinksDesc()),
          programCells(compiled->programCells()),
          firstHopLink(compiled->firstHopLink()),
          lastHopLink(compiled->lastHopLink()),
          firstHopCross(compiled->firstHopCross()),
          lastHopCross(compiled->lastHopCross())
    {
        if (!compiled->valid()) {
            firstError = compiled->error();
            return;
        }
        // A shared CompiledProgram binds routes to one topology; a
        // spec with different links would send every route to the
        // wrong machine. (Sessions built the classic way compile
        // against spec.topo itself, so this always passes for them.)
        if (!sameTopology(spec.topo, compiled->topo())) {
            firstError = "machine spec topology does not match the "
                         "compiled program's";
            return;
        }
        configOk = true;

        arena.build(spec, program, compiled->crossingsPerLink());
        links = arena.links();
        cells = arena.cells();

        // Register every route crossing in (message, hop) order — the
        // order CompiledProgram counted, so its first/last-hop
        // crossing indices match the lists built here.
        for (MessageId m = 0; m < program.numMessages(); ++m) {
            const Route& route = competing.route(m);
            for (int h = 0; h < route.numHops(); ++h) {
                LinkState& link = links[route.hops[h].link];
                link.addCrossing(m, route.hops[h].dir, h,
                                 program.messageLength(m));
                link.crossings().back().finalHop =
                    h + 1 == route.numHops();
            }
        }

        writeSeq.assign(program.numMessages(), 0);
        readSeq.assign(program.numMessages(), 0);

        eventMode = options.kernel == KernelKind::kEventDriven;

        linkDead.assign(links.size(), 0);
        cellDead.assign(cells.size(), 0);
        linkStallUntil.assign(links.size(), 0);

        cellWaitLink.assign(cells.size(), kInvalidLink);
        waiterHead.assign(links.size(), kInvalidCell);
        waiterNext.assign(cells.size(), kInvalidCell);
        fwdCount.assign(links.size(), 0);
        pendingCount.assign(links.size(), 0);
        recheckFlag.assign(links.size(), 0);
        activeCells.resize(static_cast<CellId>(cells.size()));
        fwdLinks.resize(static_cast<LinkIndex>(links.size()));
        pendingLinks.resize(static_cast<LinkIndex>(links.size()));
    }

    /**
     * The session's default labels: a SessionOptions override wins,
     * else the shared CompiledProgram's (lazy, computed at most once
     * per compiled program — not per session).
     */
    const std::vector<std::int64_t>&
    defaultLabels() const
    {
        if (!options.labels.empty())
            return options.labels;
        return compiled->labels();
    }

    /**
     * Labels this run sees: an explicit request override is always
     * honored; otherwise the session defaults, resolved only when the
     * run actually needs labels (compatible policies or the audit).
     * A label-free run reports no labels — regardless of what earlier
     * runs resolved — so identical requests always produce identical
     * results (and match the single-use simulator).
     */
    const std::vector<std::int64_t>&
    resolveLabels(const RunRequest& request, bool needed)
    {
        if (!request.labels.empty())
            return request.labels;
        if (!needed)
            return kNoLabels;
        return defaultLabels();
    }

    AssignmentPolicy&
    getPolicy(PolicyKind kind, const std::vector<std::int64_t>& labels,
              std::uint64_t seed)
    {
        CachedPolicy& slot = policyCache[static_cast<int>(kind)];
        if (!slot.policy || slot.labels != labels) {
            slot.policy = makePolicy(kind, labels, seed);
            slot.labels = labels;
        }
        slot.policy->resetRun(seed);
        return *slot.policy;
    }

    // -----------------------------------------------------------------
    // In-place reset: the compile-once/run-many core.
    // -----------------------------------------------------------------

    void
    resetRun()
    {
        clearFaultState();
        // Only routed links and program-bearing cells ever mutate, so
        // the reset is O(program activity), not O(machine) — the rest
        // of the array is still in its start-of-run state.
        for (LinkIndex l : routedLinksDesc)
            links[l].resetRun();
        for (CellId c : programCells)
            cells[c].resetRun();
        std::fill(writeSeq.begin(), writeSeq.end(), 0);
        std::fill(readSeq.begin(), readSeq.end(), 0);

        result.status = RunStatus::kConfigError;
        result.cycles = 0;
        result.error.clear();
        result.stats.resetRun(cells.size());
        result.deadlock = DeadlockReport{};
        result.events.clear();
        result.releases.clear();
        result.audit = AuditReport{};
        result.labelsUsed = *runLabels;
        // The result vectors were moved out to the previous caller;
        // reserve this session's high-water marks so collecting runs
        // stop reallocating on the reuse path.
        if (needEvents)
            result.events.reserve(hwEvents);
        if (collectReleases)
            result.releases.reserve(hwReleases);
        if (collectTiming)
            result.msgTiming.assign(program.numMessages(), {-1, -1});
        else
            result.msgTiming.clear();
        if (collectReceived) {
            result.received.resize(program.numMessages());
            for (MessageId m = 0; m < program.numMessages(); ++m) {
                result.received[m].clear();
                // A message delivers exactly messageLength words.
                result.received[m].reserve(
                    static_cast<std::size_t>(program.messageLength(m)));
            }
        } else {
            result.received.clear();
        }

        if (eventMode) {
            activeCells.clear();
            doneCells = 0;
            for (CellId c : programCells) {
                cellWaitLink[c] = kInvalidLink;
                waiterNext[c] = kInvalidCell;
            }
            for (LinkIndex l : routedLinksDesc) {
                waiterHead[l] = kInvalidCell;
                fwdCount[l] = 0;
                pendingCount[l] = 0;
                recheckFlag[l] = 0;
            }
            nextCycleWakes.clear();
            timedWakes.clear();
            fwdLinks.clear();
            pendingLinks.clear();
            recheckList.clear();
            queueEvents.clear();
            queueEventsHeaped = 0;
            queueEventCompactLimit = 64;
        }
    }

    // -----------------------------------------------------------------
    // Fault injection (see the fault-state section above for the
    // design). killLink/killCell/degradeQueue/stallLink mutate only
    // kernel-independent flags plus the event kernel's wake sets —
    // waking too much is always safe, so the dense kernel simply
    // ignores those calls.
    // -----------------------------------------------------------------

    /** Undo the previous run's fault effects; O(affected + plan). */
    void
    clearFaultState()
    {
        for (LinkIndex l : faultTouchedLinks) {
            linkDead[l] = 0;
            linkStallUntil[l] = 0;
        }
        for (CellId c : faultTouchedCells)
            cellDead[c] = 0;
        // Queues of routed links reset their clamp in HwQueue::reset();
        // this also covers degrades aimed at unrouted links.
        for (const auto& [l, q] : degradedQueues)
            links[l].queue(q).setCapacityLimit(0);
        faultTouchedLinks.clear();
        faultTouchedCells.clear();
        degradedQueues.clear();
        activeStalls.clear();
        faultCursor = 0;
    }

    /** Is the link currently unable to do anything at all? */
    bool
    linkUnusable(LinkIndex l, Cycle now) const
    {
        return linkDead[l] != 0 || linkStallUntil[l] > now;
    }

    void
    killLink(LinkIndex l)
    {
        if (linkDead[l])
            return;
        linkDead[l] = 1;
        faultTouchedLinks.push_back(l);
        // Cells blocked here re-step once and re-block with
        // kLinkDead, keeping deadlock snapshots identical to the
        // dense kernel's (which re-steps blocked cells every cycle).
        if (eventMode)
            wakeWaiters(l);
    }

    void
    killCell(CellId c)
    {
        if (!cellDead[c]) {
            cellDead[c] = 1;
            faultTouchedCells.push_back(c);
            // The cell never steps again; pin the snapshot reason now
            // (the dense kernel skips dead cells, so nothing would
            // otherwise update it).
            cells[c].lastBlock = BlockReason::kCellDead;
            if (eventMode) {
                removeWaiter(c);
                activeCells.erase(c);
            }
        }
        // A dead cell takes its links with it.
        for (CellId nbr : spec.topo.neighbors(c)) {
            if (auto l = spec.topo.linkBetween(c, nbr))
                killLink(*l);
        }
    }

    void
    degradeQueue(LinkIndex l, int qid, int cap)
    {
        // Track by membership, not by clamp-was-zero: on the
        // checkpoint-restore replay path the clamp arrives pre-set
        // from the arena pools, yet must still be registered so the
        // next clearFaultState() resets it (the queue may belong to
        // an unrouted link, which resetRun() never touches).
        HwQueue& q = links[l].queue(qid);
        bool tracked = false;
        for (const auto& [tl, tq] : degradedQueues) {
            if (tl == l && tq == qid) {
                tracked = true;
                break;
            }
        }
        if (!tracked)
            degradedQueues.push_back({l, qid});
        q.setCapacityLimit(cap);
        // A later degrade may *raise* the clamp back up: writers
        // blocked kQueueFull must get a fresh look.
        if (eventMode)
            wakeWaiters(l);
    }

    void
    stallLink(LinkIndex l, Cycle until)
    {
        if (linkStallUntil[l] == 0)
            faultTouchedLinks.push_back(l);
        if (until > linkStallUntil[l])
            linkStallUntil[l] = until;
        activeStalls.push_back({l, until});
        // Blocked cells re-report kLinkStalled (snapshot parity).
        if (eventMode)
            wakeWaiters(l);
    }

    /**
     * Apply every plan event due at @p now and expire finished stalls.
     * Called at the top of each executed cycle (and with now = 0
     * before policy setup), identically in both kernels. Fault cycles
     * are never skipped: the event kernel's fast-forward caps its
     * jumps at nextFaultCycle().
     */
    void
    applyFaultsDue(Cycle now)
    {
        if (!activeStalls.empty()) {
            std::size_t w = 0;
            for (const ActiveStall& s : activeStalls) {
                if (s.until <= now) {
                    // The link revives this cycle, before any phase.
                    if (eventMode && !linkDead[s.link]) {
                        wakeWaiters(s.link);
                        markRecheck(s.link);
                    }
                } else {
                    activeStalls[w++] = s;
                }
            }
            activeStalls.resize(w);
        }
        while (faults != nullptr && faultCursor < faults->size() &&
               faults->events()[faultCursor].cycle <= now) {
            const FaultEvent& e = faults->events()[faultCursor++];
            switch (e.kind) {
              case FaultKind::kKillLink:
                killLink(e.link);
                break;
              case FaultKind::kKillCell:
                killCell(e.cell);
                break;
              case FaultKind::kDegradeQueue:
                degradeQueue(e.link, e.queue, e.arg);
                break;
              case FaultKind::kStallLink:
                // Anchored to the event's cycle (== now on the live
                // path; may be < now only during checkpoint replay).
                stallLink(e.link, e.cycle + e.arg);
                break;
            }
        }
    }

    /**
     * Will future fault activity still change the machine? While true
     * a zero-progress cycle is not terminal: pending plan events will
     * mutate hardware, and an unexpired stall revives its link. After
     * applyFaultsDue(now) every surviving stall has until > now.
     */
    bool
    faultEventPending() const
    {
        if (!faultsActive)
            return false;
        return (faults != nullptr && faultCursor < faults->size()) ||
               !activeStalls.empty();
    }

    /** Earliest future cycle a plan event applies or a stall expires
     *  (-1 when neither is pending). Caps fast-forward jumps. */
    Cycle
    nextFaultCycle() const
    {
        Cycle next = -1;
        if (faults != nullptr && faultCursor < faults->size())
            next = faults->events()[faultCursor].cycle;
        for (const ActiveStall& s : activeStalls) {
            if (next < 0 || s.until < next)
                next = s.until;
        }
        return next;
    }

    /** Crossings on @p l whose message has not fully passed it. */
    int
    unfinishedCrossings(LinkIndex l) const
    {
        int open = 0;
        for (const Crossing& c : links[l].crossings()) {
            if (c.phase != CrossingPhase::kDone)
                ++open;
        }
        return open;
    }

    /**
     * Decide kDeadlocked vs kFaulted at a terminal stall and fill the
     * report's fault attribution: an applied event is implicated when
     * the frozen state still shows work it holds hostage. The rules
     * are deliberately liberal heuristics (a dead link with any
     * unfinished crossing is implicated even if that traffic would
     * have deadlocked anyway) — attribution names suspects, it does
     * not prove causality. All inputs are kernel-independent machine
     * state, so both kernels attribute identically. Expired stalls
     * are never implicated: terminality already implies every stall
     * ran out.
     */
    void
    attributeFaults(DeadlockReport& report)
    {
        if (faults == nullptr)
            return;
        const std::vector<FaultEvent>& evs = faults->events();
        const int physicalCap =
            spec.queueCapacity + spec.extensionCapacity;
        for (std::size_t i = 0; i < faultCursor; ++i) {
            const FaultEvent& e = evs[i];
            std::string why;
            switch (e.kind) {
              case FaultKind::kKillLink: {
                int open = unfinishedCrossings(e.link);
                if (open > 0)
                    why = std::to_string(open) +
                          " unfinished crossing(s) on the dead link";
                break;
              }
              case FaultKind::kKillCell: {
                if (!cells[e.cell].done()) {
                    why = "cell froze with unfinished program (pc " +
                          std::to_string(cells[e.cell].pc()) + ")";
                    break;
                }
                int open = 0;
                for (CellId nbr : spec.topo.neighbors(e.cell)) {
                    if (auto l = spec.topo.linkBetween(e.cell, nbr))
                        open += unfinishedCrossings(*l);
                }
                if (open > 0)
                    why = std::to_string(open) +
                          " unfinished crossing(s) on its dead links";
                break;
              }
              case FaultKind::kDegradeQueue: {
                const HwQueue& q = links[e.link].queue(e.queue);
                if (q.capacityLimit() > 0 &&
                    q.capacityLimit() < physicalCap &&
                    unfinishedCrossings(e.link) > 0)
                    why = "capacity clamped to " +
                          std::to_string(q.capacityLimit()) + " of " +
                          std::to_string(physicalCap) +
                          " with unfinished crossings on the link";
                break;
              }
              case FaultKind::kStallLink:
                break;
            }
            if (!why.empty())
                report.faults.push_back(
                    {static_cast<int>(i), e.describe(), std::move(why)});
        }
        if (!report.faults.empty())
            result.status = RunStatus::kFaulted;
    }

    /**
     * Rebuild the fault-derived flags for a run paused at
     * @p pauseCycle by replaying the plan's due events — the
     * restore/adopt path. Event-kernel side effects (wakes, active-set
     * erases) land on state rebuildEventState() redoes afterwards.
     */
    void
    reapplyFaultsThrough(Cycle pauseCycle)
    {
        applyFaultsDue(pauseCycle);
        // Expired stalls owe no wake (every cell wakes on rebuild).
        activeStalls.erase(
            std::remove_if(activeStalls.begin(), activeStalls.end(),
                           [&](const ActiveStall& s) {
                               return s.until <= pauseCycle;
                           }),
            activeStalls.end());
    }

    // -----------------------------------------------------------------
    // Event hooks. Every queue/crossing mutation funnels through one
    // of these so the active sets stay exact. All are no-ops for the
    // reference kernel.
    // -----------------------------------------------------------------

    void
    wakeCell(CellId cell)
    {
        // A dead cell never re-enters the active set: stale entries in
        // the timed-wake buffers or waiter lists must not revive it.
        if (!cells[cell].done() && !cellDead[cell])
            activeCells.insert(cell);
    }

    void
    wakeWaiters(LinkIndex l)
    {
        for (CellId c = waiterHead[l]; c != kInvalidCell;
             c = waiterNext[c])
            wakeCell(c);
    }

    void
    markRecheck(LinkIndex l)
    {
        if (!recheckFlag[l]) {
            recheckFlag[l] = 1;
            recheckList.push_back(l);
        }
    }

    void
    onRequest(LinkIndex l)
    {
        if (!eventMode)
            return;
        if (pendingCount[l]++ == 0)
            pendingLinks.insert(l);
        // A request cannot unblock a cell, but it changes the block
        // *reason* a waiting reader would report (kIdle ->
        // kRequested); wake it so deadlock snapshots stay identical
        // to the dense kernel's.
        wakeWaiters(l);
    }

    /**
     * A queue's front word changed (push into empty, or pop exposing
     * the next word): record when the new front matures. Every
     * non-empty queue has a live heap entry, which is what makes the
     * heap-based timed-event check exact.
     */
    void
    scheduleQueueEvent(const LinkState& link, const HwQueue& q)
    {
        queueEvents.push_back(
            {q.frontReadyCycle(), link.index(), q.id()});
        if (queueEvents.size() > queueEventCompactLimit)
            compactQueueEvents();
    }

    /** Restore the heap property over the appended tail. */
    void
    ensureQueueEventHeap()
    {
        std::size_t tail = queueEvents.size() - queueEventsHeaped;
        if (tail == 0)
            return;
        if (tail <= 64) {
            // A short tail is cheaper to sift in one by one than to
            // re-heapify everything.
            while (queueEventsHeaped < queueEvents.size()) {
                ++queueEventsHeaped;
                std::push_heap(queueEvents.begin(),
                               queueEvents.begin() +
                                   static_cast<std::ptrdiff_t>(
                                       queueEventsHeaped),
                               laterReady);
            }
        } else {
            std::make_heap(queueEvents.begin(), queueEvents.end(),
                           laterReady);
            queueEventsHeaped = queueEvents.size();
        }
    }

    static bool
    laterReady(const QueueTimedEvent& a, const QueueTimedEvent& b)
    {
        return a.ready > b.ready; // min-heap on ready cycle
    }

    bool
    queueEventLive(const QueueTimedEvent& e) const
    {
        const HwQueue& q =
            links[e.link].queues()[static_cast<std::size_t>(e.queue)];
        return !q.empty() && q.frontReadyCycle() == e.ready;
    }

    /**
     * Drop stale entries in bulk so the heap stays proportional to
     * the number of in-flight queue fronts, not to the total words a
     * long run ever forwarded. Amortized O(1) per scheduled event.
     */
    void
    compactQueueEvents()
    {
        queueEvents.erase(
            std::remove_if(queueEvents.begin(), queueEvents.end(),
                           [this](const QueueTimedEvent& e) {
                               return !queueEventLive(e);
                           }),
            queueEvents.end());
        // The survivors are in arbitrary order now; re-heapify on the
        // next query.
        queueEventsHeaped = 0;
        queueEventCompactLimit =
            std::max<std::size_t>(64, 2 * queueEvents.size());
    }

    /** After a queue push left @p q non-empty for the first time. */
    void
    onPush(LinkState& link, const HwQueue& q)
    {
        if (!eventMode)
            return;
        LinkIndex l = link.index();
        if (q.size() == 1) {
            scheduleQueueEvent(link, q);
            if (!q.finalHop()) {
                if (fwdCount[l]++ == 0)
                    fwdLinks.insert(l);
            }
        }
        wakeWaiters(l);
    }

    /** After a pop (queue still assigned to the popped message). */
    void
    onPop(LinkState& link, const HwQueue& q)
    {
        if (!eventMode)
            return;
        LinkIndex l = link.index();
        if (q.empty()) {
            if (!q.finalHop()) {
                if (--fwdCount[l] == 0)
                    fwdLinks.erase(l);
            }
        } else {
            scheduleQueueEvent(link, q); // a new word surfaced
        }
        wakeWaiters(l);
    }

    void
    onAssignDecision(LinkState& link, MessageId msg)
    {
        if (!eventMode)
            return;
        LinkIndex l = link.index();
        // A message assigned straight from kIdle (eager reservation)
        // never held a pending request.
        if (link.crossing(msg).requestedAt >= 0) {
            if (--pendingCount[l] == 0)
                pendingLinks.erase(l);
        }
        markRecheck(l);
        wakeWaiters(l);
    }

    void
    onRelease(LinkIndex l)
    {
        if (!eventMode)
            return;
        markRecheck(l);
        wakeWaiters(l);
    }

    // -----------------------------------------------------------------
    // Shared phase pieces
    // -----------------------------------------------------------------

    /** Record a policy decision batch as events + stats. */
    std::int64_t
    applyDecisions(LinkState& link,
                   const std::vector<AssignmentDecision>& decisions,
                   Cycle now)
    {
        for (const AssignmentDecision& d : decisions) {
            const Crossing& c = link.crossing(d.msg);
            if (needEvents || observer != nullptr) {
                AssignmentEvent ev;
                ev.cycle = now;
                ev.link = link.index();
                ev.msg = d.msg;
                ev.queueId = d.queueId;
                ev.dir = c.dir;
                if (needEvents)
                    result.events.push_back(ev);
                if (observer != nullptr)
                    observer->onAssign(ev);
            }
            ++result.stats.assignments;
            if (c.requestedAt >= 0)
                result.stats.requestWaitCycles += now - c.requestedAt;
            onAssignDecision(link, d.msg);
        }
        return static_cast<std::int64_t>(decisions.size());
    }

    /** Release a finished message's queue, keeping the event log. */
    void
    releaseMsg(LinkState& link, MessageId msg, Cycle now)
    {
        if (collectReleases || observer != nullptr) {
            AssignmentEvent ev;
            ev.cycle = now;
            ev.link = link.index();
            ev.msg = msg;
            ev.queueId = link.crossing(msg).queueId;
            ev.dir = link.crossing(msg).dir;
            if (collectReleases)
                result.releases.push_back(ev);
            if (observer != nullptr)
                observer->onRelease(ev);
        }
        link.finishMsg(msg, now);
        ++result.stats.releases;
        onRelease(link.index());
    }

    std::int64_t
    tickLink(LinkState& link, Cycle now)
    {
        // A dead or stalled link makes no decisions. Skipping the
        // whole tick (rather than emitting empty decisions) keeps the
        // policy's counted RNG streams aligned across kernels: neither
        // kernel draws for this link while it is down.
        if (faultsActive && linkUnusable(link.index(), now))
            return 0;
        decisionScratch.clear();
        policy->tick(link, now, decisionScratch);
        return applyDecisions(link, decisionScratch, now);
    }

    /** Move one link's in-flight words a hop; request next-hop queues. */
    std::int64_t
    forwardOneLink(LinkState& link, Cycle now)
    {
        if (faultsActive && linkUnusable(link.index(), now))
            return 0;
        std::int64_t progress = 0;
        for (HwQueue& q : link.queues()) {
            if (q.isFree() || q.empty())
                continue;
            if (q.finalHop())
                continue; // final hop: the receiver pops it
            MessageId msg = q.assignedMsg();
            const Crossing& c = link.crossing(msg);
            const Route& route = competing.route(msg);
            const Hop& next_hop = route.hops[c.hopIndex + 1];
            LinkState& next_link = links[next_hop.link];
            // No requests to and no pushes into a downed next hop.
            if (faultsActive && linkUnusable(next_link.index(), now))
                continue;
            Crossing& nc = next_link.crossing(msg);
            if (nc.phase == CrossingPhase::kIdle) {
                // The message header arrived at the intermediate
                // cell: ask for the next queue (section 5).
                next_link.request(msg, now);
                onRequest(next_link.index());
                ++result.stats.requests;
                ++progress;
                continue;
            }
            if (nc.phase != CrossingPhase::kAssigned)
                continue;
            if (!q.canPop(now))
                continue;
            HwQueue& nq = next_link.queue(nc.queueId);
            if (!nq.canPush(now))
                continue;
            Word w = q.pop(now);
            onPop(link, q);
            nq.push(w, now);
            onPush(next_link, nq);
            ++result.stats.wordsForwarded;
            ++progress;
            if (q.wordsRemaining() == 0) {
                releaseMsg(link, msg, now);
                ++progress;
            }
        }
        return progress;
    }

    std::int64_t
    executeWrite(CellRuntime& cell, const Op& op, Cycle now)
    {
        std::int64_t progress = 0;

        // Memory-to-memory model: stage the word through local memory
        // before it may enter the output queue (2 accesses).
        if (options.memoryToMemory) {
            if (cell.stallRemaining() < 0) {
                cell.setStallRemaining(2 * options.memAccessCost);
                result.stats.memAccesses += 2;
            }
            if (cell.stallRemaining() > 0) {
                cell.setStallRemaining(cell.stallRemaining() - 1);
                ++result.stats.memStallCycles;
                cell.lastBlock = BlockReason::kMemoryStall;
                return 1;
            }
        }

        LinkState& link = links[firstHopLink[op.msg]];
        if (faultsActive && linkUnusable(link.index(), now)) {
            cell.lastBlock = linkDead[link.index()]
                                 ? BlockReason::kLinkDead
                                 : BlockReason::kLinkStalled;
            blockLink = link.index();
            return 0;
        }
        Crossing& c = link.crossings()[firstHopCross[op.msg]];
        if (c.phase == CrossingPhase::kIdle) {
            link.request(op.msg, now);
            onRequest(link.index());
            ++result.stats.requests;
            cell.lastBlock = BlockReason::kQueueNotAssigned;
            return 1;
        }
        if (c.phase != CrossingPhase::kAssigned) {
            cell.lastBlock = BlockReason::kQueueNotAssigned;
            blockLink = link.index();
            return 0;
        }
        HwQueue& q = link.queue(c.queueId);
        if (!q.canPush(now)) {
            cell.lastBlock = BlockReason::kQueueFull;
            blockLink = link.index();
            return 0;
        }
        Word w;
        w.msg = op.msg;
        w.seq = writeSeq[op.msg]++;
        w.value = cell.takeWriteValue();
        if (collectTiming && w.seq == 0)
            result.msgTiming[op.msg].first = now;
        q.push(w, now);
        onPush(link, q);
        ++result.stats.opsExecuted;
        ++progress;
        cell.advance();
        return progress;
    }

    std::int64_t
    executeRead(CellRuntime& cell, const Op& op, Cycle now)
    {
        // Memory-to-memory model, phase 2: after the word left the
        // queue it must pass through local memory (2 accesses).
        if (options.memoryToMemory && cell.readCompleted()) {
            if (cell.stallRemaining() > 0) {
                cell.setStallRemaining(cell.stallRemaining() - 1);
                ++result.stats.memStallCycles;
                cell.lastBlock = BlockReason::kMemoryStall;
                return 1;
            }
            ++result.stats.opsExecuted;
            cell.advance();
            return 1;
        }

        LinkState& link = links[lastHopLink[op.msg]];
        // Even reads drain through the final-hop queue's read port;
        // a downed link blocks them too.
        if (faultsActive && linkUnusable(link.index(), now)) {
            cell.lastBlock = linkDead[link.index()]
                                 ? BlockReason::kLinkDead
                                 : BlockReason::kLinkStalled;
            blockLink = link.index();
            return 0;
        }
        Crossing& c = link.crossings()[lastHopCross[op.msg]];
        if (c.phase != CrossingPhase::kAssigned) {
            cell.lastBlock = c.phase == CrossingPhase::kRequested
                                 ? BlockReason::kQueueNotAssigned
                                 : BlockReason::kWordNotArrived;
            blockLink = link.index();
            return 0;
        }
        HwQueue& q = link.queue(c.queueId);
        if (!q.canPop(now)) {
            cell.lastBlock = BlockReason::kWordNotArrived;
            blockLink = link.index();
            // The front word (if any) becomes consumable by time
            // alone; schedule the wake-up.
            if (!q.empty())
                blockTimedWake = std::max(q.frontReadyCycle(), now + 1);
            return 0;
        }
        Word w = q.pop(now);
        onPop(link, q);
        assert(w.msg == op.msg);
        assert(w.seq == readSeq[op.msg] && "words arrive in order");
        int seq = readSeq[op.msg]++;
        cell.recordRead(w.value);
        if (collectReceived)
            result.received[op.msg].push_back(w.value);
        if (observer != nullptr)
            observer->onDeliver(op.msg, seq, w.value, now);
        ++result.stats.wordsDelivered;
        if (collectTiming &&
            readSeq[op.msg] == program.messageLength(op.msg))
            result.msgTiming[op.msg].second = now;
        std::int64_t progress = 1;
        if (q.wordsRemaining() == 0) {
            releaseMsg(link, op.msg, now);
            ++progress;
        }
        if (options.memoryToMemory) {
            cell.setReadCompleted(true);
            cell.setStallRemaining(2 * options.memAccessCost);
            result.stats.memAccesses += 2;
            return progress;
        }
        ++result.stats.opsExecuted;
        cell.advance();
        return progress;
    }

    /** One cell's attempt to execute its current op this cycle. */
    std::int64_t
    cellStep(CellRuntime& cell, Cycle now)
    {
        cell.setNow(now);
        cell.lastBlock = BlockReason::kNone;
        const Op& op = cell.currentOp();
        switch (op.kind) {
          case OpKind::kCompute: {
            const ComputeFn& fn = program.computeFn(op.computeId);
            if (fn)
                fn(cell);
            ++result.stats.opsExecuted;
            ++result.stats.computeOps;
            cell.advance();
            return 1;
          }
          case OpKind::kWrite:
            return executeWrite(cell, op, now);
          case OpKind::kRead:
            return executeRead(cell, op, now);
        }
        return 0;
    }

    bool
    allDone() const
    {
        for (const CellRuntime& cell : cells) {
            if (!cell.done())
                return false;
        }
        return true;
    }

    DeadlockReport
    snapshot(Cycle now) const
    {
        DeadlockReport report;
        report.deadlocked = true;
        report.atCycle = now;
        for (const CellRuntime& cell : cells) {
            if (cell.done())
                continue;
            CellBlockInfo info;
            info.cell = cell.cellId();
            info.pc = cell.pc();
            info.op = opText(program, cell.currentOp());
            info.reason = blockReasonName(cell.lastBlock);
            report.cells.push_back(std::move(info));
        }
        for (const LinkState& link : links) {
            LinkSnapshot snap;
            snap.link = link.index();
            snap.a = spec.topo.link(link.index()).a;
            snap.b = spec.topo.link(link.index()).b;
            for (const HwQueue& q : link.queues()) {
                QueueSnapshot qs;
                qs.id = q.id();
                qs.msg = q.isFree() ? "-"
                                    : program.message(q.assignedMsg()).name;
                qs.occupancy = q.size();
                qs.capacity = q.totalCapacity();
                snap.queues.push_back(std::move(qs));
            }
            for (const Crossing& c : link.crossings()) {
                if (c.phase == CrossingPhase::kRequested)
                    snap.waiting.push_back(program.message(c.msg).name);
            }
            report.links.push_back(std::move(snap));
        }
        return report;
    }

    /**
     * Settle every routed queue through the run's current cycle and
     * add the (cumulative-since-run-start) totals into @p into. The
     * final result and every pause snapshot go through this; settling
     * early is safe — the lazy stats just continue from the settled
     * point when the run resumes.
     */
    void
    accumulateQueueStats(SimStats& into)
    {
        // Unrouted links' queues are never assigned: every contribution
        // from them is zero, so only routed links need settling.
        for (LinkIndex l : routedLinksDesc) {
            for (HwQueue& q : links[l].queues()) {
                q.settleStats(result.cycles);
                into.queueBusyCycles += q.busyCycles();
                into.queueOccupancySum += q.occupancySum();
                into.extendedWords += q.extendedWords();
            }
        }
    }

    // -----------------------------------------------------------------
    // Reference kernel: dense per-cycle scans (the oracle).
    // -----------------------------------------------------------------

    std::int64_t
    assignmentPhaseDense(Cycle now)
    {
        std::int64_t progress = 0;
        for (LinkState& link : links)
            progress += tickLink(link, now);
        return progress;
    }

    std::int64_t
    forwardingPhaseDense(Cycle now)
    {
        std::int64_t progress = 0;
        for (LinkIndex l : routedLinksDesc)
            progress += forwardOneLink(links[l], now);
        return progress;
    }

    std::int64_t
    cellPhaseDense(Cycle now)
    {
        std::int64_t progress = 0;
        for (CellRuntime& cell : cells) {
            if (cell.done())
                continue;
            // A dead cell never steps; it just accrues blocked time
            // (its lastBlock was pinned to kCellDead at kill time).
            if (faultsActive && cellDead[cell.cellId()]) {
                ++result.stats.cellBlockedCycles;
                ++result.stats.perCellBlocked[cell.cellId()];
                continue;
            }
            std::int64_t delta = cellStep(cell, now);
            if (delta == 0) {
                ++result.stats.cellBlockedCycles;
                ++result.stats.perCellBlocked[cell.cellId()];
            }
            progress += delta;
        }
        return progress;
    }

    bool
    timedEventPendingDense(Cycle now) const
    {
        for (const LinkState& link : links) {
            for (const HwQueue& q : link.queues()) {
                if (q.pendingTimedEvent(now))
                    return true;
            }
        }
        return false;
    }

    void
    runReference(Cycle from)
    {
        for (Cycle now = from; now <= maxCycles; ++now) {
            if (faultsActive)
                applyFaultsDue(now);
            std::int64_t progress = 0;
            progress += assignmentPhaseDense(now);
            progress += forwardingPhaseDense(now);
            progress += cellPhaseDense(now);

            if (allDone()) {
                result.status = RunStatus::kCompleted;
                result.cycles = now;
                break;
            }
            if (progress == 0 && !timedEventPendingDense(now) &&
                !faultEventPending()) {
                result.status = RunStatus::kDeadlocked;
                result.cycles = now;
                result.deadlock = snapshot(now);
                if (faultsActive)
                    attributeFaults(result.deadlock);
                break;
            }
            if (now == maxCycles) {
                result.status = RunStatus::kMaxCycles;
                result.cycles = now;
                break;
            }
            // Pause checks come after every terminal check so that a
            // pause target landing on the final cycle still reports
            // the terminal status, identically to an unpaused run.
            if (pauseTarget > 0 && now >= pauseTarget) {
                result.status = RunStatus::kPaused;
                result.cycles = now;
                break;
            }
        }
    }

    // -----------------------------------------------------------------
    // Event-driven kernel
    // -----------------------------------------------------------------

    void
    initActiveState()
    {
        // Empty-program cells are born done; cells with ops are not.
        doneCells = static_cast<int>(cells.size() - programCells.size());
        for (CellId c : programCells)
            activeCells.insert(c); // ascending: each insert is at the end
        // Cycle 1 must give the policy a first look at every link a
        // message crosses (eager reservation acts with no requests).
        for (LinkIndex l : routedLinksDesc)
            markRecheck(l);
    }

    void
    removeWaiter(CellId cell)
    {
        LinkIndex l = cellWaitLink[cell];
        if (l == kInvalidLink)
            return;
        // Unlink from the (short) intrusive waiter list.
        CellId* slot = &waiterHead[l];
        while (*slot != cell)
            slot = &waiterNext[*slot];
        *slot = waiterNext[cell];
        waiterNext[cell] = kInvalidCell;
        cellWaitLink[cell] = kInvalidLink;
    }

    void
    registerWait(CellId cell, LinkIndex link, Cycle timed, Cycle now)
    {
        if (cellWaitLink[cell] != link) {
            removeWaiter(cell);
            if (link != kInvalidLink) {
                cellWaitLink[cell] = link;
                waiterNext[cell] = waiterHead[link];
                waiterHead[link] = cell;
            }
        }
        if (timed == now + 1) {
            nextCycleWakes.push_back(cell); // the common case: O(1)
        } else if (timed >= 0) {
            timedWakes.emplace_back(timed, cell);
            std::push_heap(timedWakes.begin(), timedWakes.end(),
                           std::greater<std::pair<Cycle, CellId>>());
        }
    }

    std::int64_t
    assignmentPhaseEvent(Cycle now)
    {
        tickScratch.clear();
        for (LinkIndex l = pendingLinks.firstAtLeast(0);
             l != kInvalidLink; l = pendingLinks.firstAtLeast(l + 1))
            tickScratch.push_back(l);
        for (LinkIndex l : recheckList) {
            recheckFlag[l] = 0;
            tickScratch.push_back(l);
        }
        recheckList.clear();
        std::sort(tickScratch.begin(), tickScratch.end());
        tickScratch.erase(
            std::unique(tickScratch.begin(), tickScratch.end()),
            tickScratch.end());
        std::int64_t progress = 0;
        for (LinkIndex l : tickScratch)
            progress += tickLink(links[l], now);
        return progress;
    }

    std::int64_t
    forwardingPhaseEvent(Cycle now)
    {
        // Descending cursor over the hot links, re-sought each step:
        // forwardOneLink both erases drained links and inserts
        // newly-hot downstream links. A new link below the cursor is
        // picked up later this same phase — exactly like the dense
        // kernel's single descending scan, which also still visits
        // links made non-empty mid-scan. Links at or above the cursor
        // were already processed and stay untouched until next cycle.
        std::int64_t progress = 0;
        LinkIndex cursor = fwdLinks.largest();
        while (cursor != kInvalidLink) {
            progress += forwardOneLink(links[cursor], now);
            cursor = fwdLinks.largestBelow(cursor);
        }
        return progress;
    }

    std::int64_t
    cellPhaseEvent(Cycle now)
    {
        // Wakes bucketed for "the next executed cycle" — which is
        // exactly this one: a non-empty bucket pins the fast-forward
        // target to now, so no jump can overshoot it. Swap first:
        // cells re-blocking during the scan refill the bucket for the
        // *next* cycle.
        wakeScratch.swap(nextCycleWakes);
        for (CellId c : wakeScratch)
            wakeCell(c);
        wakeScratch.clear();
        while (!timedWakes.empty() && timedWakes.front().first <= now) {
            CellId c = timedWakes.front().second;
            std::pop_heap(timedWakes.begin(), timedWakes.end(),
                          std::greater<std::pair<Cycle, CellId>>());
            timedWakes.pop_back();
            wakeCell(c);
        }
        // Ascending cursor, re-sought by value each step: erasing the
        // current cell or inserting woken cells mid-scan behaves
        // exactly like std::set iteration did (inserts ahead of the
        // cursor are visited this phase, inserts behind it are not).
        std::int64_t progress = 0;
        CellId id = activeCells.firstAtLeast(0);
        while (id != kInvalidCell) {
            CellRuntime& cell = cells[id];
            // Settle the blocked span the dense kernel would have
            // accumulated while this cell slept.
            Cycle span = (now - 1) - cell.lastVisitCycle;
            if (span > 0) {
                result.stats.cellBlockedCycles += span;
                result.stats.perCellBlocked[id] += span;
            }
            cell.lastVisitCycle = now;
            // A cell killed while in the active set (or woken by a
            // stale timed wake) is charged like the dense kernel's
            // skip and put back to sleep forever.
            if (faultsActive && cellDead[id]) {
                ++result.stats.cellBlockedCycles;
                ++result.stats.perCellBlocked[id];
                removeWaiter(id);
                activeCells.erase(id);
                id = activeCells.firstAtLeast(id + 1);
                continue;
            }
            blockLink = kInvalidLink;
            blockTimedWake = -1;
            std::int64_t delta = cellStep(cell, now);
            progress += delta;
            if (cell.done()) {
                ++doneCells;
                removeWaiter(id);
                activeCells.erase(id);
            } else if (delta == 0) {
                ++result.stats.cellBlockedCycles;
                ++result.stats.perCellBlocked[id];
                if (blockLink != kInvalidLink) {
                    registerWait(id, blockLink, blockTimedWake, now);
                    activeCells.erase(id);
                }
                // else: no known wake condition — stay active (never
                // sleep without one; costs cycles, not answers).
            }
            else {
                removeWaiter(id);
            }
            id = activeCells.firstAtLeast(id + 1);
        }
        return progress;
    }

    /**
     * Pop heap entries that are stale (their front was popped or
     * replaced) or already mature (the queue is consumable at @p now
     * — not a *timed* event). Only called at zero-progress cycles, so
     * no queue was pushed or popped at @p now: for every non-empty
     * queue the front's maturity is exactly frontReadyCycle(), and
     * after pruning the heap top is the earliest live timed event.
     */
    void
    pruneQueueEvents(Cycle now)
    {
        ensureQueueEventHeap();
        while (!queueEvents.empty()) {
            const QueueTimedEvent& top = queueEvents.front();
            if (top.ready > now && queueEventLive(top))
                break;
            std::pop_heap(queueEvents.begin(), queueEvents.end(),
                          laterReady);
            queueEvents.pop_back();
            --queueEventsHeaped;
        }
    }

    bool
    timedEventPendingEvent(Cycle now)
    {
        pruneQueueEvents(now);
        return !queueEvents.empty();
    }

    /**
     * True when cycles after a zero-progress cycle may be skipped
     * wholesale: no cell is runnable and no policy re-tick is queued.
     * Pending-request links need no special case for any policy —
     * a tick that could change link state always makes progress (so
     * its cycle is never skipped), and RandomPolicy's per-link
     * counted streams draw nothing on ticks that cannot assign, so
     * skipped idle cycles cannot desynchronize its shuffles.
     */
    bool
    canFastForward() const
    {
        return activeCells.empty() && recheckList.empty();
    }

    /** Earliest future cycle any queue front or cell wake matures. */
    Cycle
    nextInterestingCycle(Cycle now)
    {
        if (!nextCycleWakes.empty())
            return now + 1; // a wake is due immediately: no jump
        Cycle next = -1;
        if (!timedWakes.empty())
            next = timedWakes.front().first;
        pruneQueueEvents(now);
        if (!queueEvents.empty()) {
            Cycle ready = queueEvents.front().ready; // > now, live
            if (next < 0 || ready < next)
                next = ready;
        }
        return next < 0 ? now + 1 : std::max(next, now + 1);
    }

    void
    runEventDriven(Cycle from)
    {
        for (Cycle now = from; now <= maxCycles; ++now) {
            if (faultsActive)
                applyFaultsDue(now);
            std::int64_t progress = 0;
            progress += assignmentPhaseEvent(now);
            progress += forwardingPhaseEvent(now);
            progress += cellPhaseEvent(now);

            if (doneCells == static_cast<int>(cells.size())) {
                result.status = RunStatus::kCompleted;
                result.cycles = now;
                break;
            }
            if (progress == 0 && !timedEventPendingEvent(now) &&
                !faultEventPending()) {
                result.status = RunStatus::kDeadlocked;
                result.cycles = now;
                result.deadlock = snapshot(now);
                if (faultsActive)
                    attributeFaults(result.deadlock);
                break;
            }
            if (now == maxCycles) {
                result.status = RunStatus::kMaxCycles;
                result.cycles = now;
                break;
            }
            // After the terminal checks, like the dense kernel: a
            // pause target on the final cycle reports the terminal
            // status.
            if (pauseTarget > 0 && now >= pauseTarget) {
                result.status = RunStatus::kPaused;
                result.cycles = now;
                break;
            }
            if (progress == 0 && canFastForward()) {
                // Bulk-advance: everything is waiting on queue
                // timing; jump straight to the first cycle where a
                // front word matures. The skipped cycles are provably
                // inert, and the lazy queue/cell accounting charges
                // their spans exactly as the dense kernel would. A
                // pending pause target caps the jump: the machine
                // state at the pause cycle equals the state at `now`
                // (the skipped stretch is inert), so pausing inside
                // it is exact.
                Cycle next = nextInterestingCycle(now);
                // Fault cycles are interesting too: a plan event or
                // stall expiry mutates hardware, so the jump must land
                // on (not past) it.
                if (faultsActive) {
                    Cycle fc = nextFaultCycle();
                    if (fc > now && fc < next)
                        next = fc;
                }
                Cycle cap = maxCycles;
                if (pauseTarget > 0 && pauseTarget < cap)
                    cap = pauseTarget;
                if (next > now + 1)
                    now = std::min(next, cap) - 1;
            }
        }
        // Charge sleeping cells the blocked cycles the dense kernel
        // would have accumulated through the final cycle. (A pause is
        // not the final cycle: the pause snapshot settles these spans
        // into its own copy and the run continues lazily.)
        if (result.status != RunStatus::kCompleted &&
            result.status != RunStatus::kPaused)
            chargeLazyBlockedSpans(result.cycles, result.stats);
    }

    /**
     * Dense-normalize the event kernel's lazy blocked-cycle
     * accounting: add, for every live cell, the span it has slept
     * since its last visit — [lastVisitCycle+1, through] — into
     * @p into, exactly what the dense kernel accumulates one cycle
     * at a time. Visit cursors are left untouched: the end-of-run
     * and pause-snapshot callers keep accumulating lazily, and
     * adoptFrom moves the cursors itself after charging.
     */
    void
    chargeLazyBlockedSpans(Cycle through, SimStats& into)
    {
        for (CellId c : programCells) {
            const CellRuntime& cell = cells[c];
            if (cell.done())
                continue;
            Cycle span = through - cell.lastVisitCycle;
            if (span > 0) {
                into.cellBlockedCycles += span;
                into.perCellBlocked[c] += span;
            }
        }
    }

    // -----------------------------------------------------------------

    RunResult
    run(const RunRequest& request)
    {
        ++runs;
        isPaused = false; // a new run abandons any paused one
        if (!configOk) {
            RunResult bad;
            bad.status = RunStatus::kConfigError;
            bad.error = firstError;
            return bad;
        }

        if (request.faults != nullptr) {
            std::string ferr =
                request.faults->validate(spec.topo, spec);
            if (!ferr.empty()) {
                RunResult bad;
                bad.status = RunStatus::kConfigError;
                bad.error = "invalid fault plan: " + ferr;
                return bad;
            }
        }

        doAudit = collects(request.collect, Collect::kAudit);
        runLabels = &resolveLabels(request, runNeedsLabels(request));
        policy = &getPolicy(request.policy, *runLabels, request.seed);
        adoptedPolicy.reset();
        observer = request.observer;
        maxCycles = request.maxCycles;
        pauseTarget = request.pauseAt;
        collectEvents = collects(request.collect, Collect::kEvents);
        needEvents = collectEvents || doAudit;
        collectReleases = collects(request.collect, Collect::kReleases);
        collectTiming = collects(request.collect, Collect::kMsgTiming);
        collectReceived = collects(request.collect, Collect::kReceived);
        faults = request.faults;
        faultsActive = faults != nullptr && !faults->empty();

        resetRun();

        if (eventMode)
            initActiveState();

        // Cycle-0 faults land before policy setup. initLink below
        // still runs on dead links — once, identically in both
        // kernels, so determinism holds — only the per-cycle tickLink
        // path is gated.
        if (faultsActive)
            applyFaultsDue(0);

        // Cycle 0: policy setup (static assignment happens here).
        // Unrouted links have no crossings, so initLink is a no-op on
        // them for every policy; only routed links get the call — in
        // ascending link order, matching the original all-links scan,
        // so cycle-0 assignment events keep their historical order.
        for (auto it = routedLinksDesc.rbegin();
             it != routedLinksDesc.rend(); ++it) {
            LinkState& link = links[*it];
            decisionScratch.clear();
            if (!policy->initLink(link, decisionScratch)) {
                result.status = RunStatus::kConfigError;
                result.error = "policy '" + policy->name() +
                               "' cannot set up link " +
                               std::to_string(link.index()) +
                               " (not enough queues?)";
                // Earlier links may have logged cycle-0 assignment
                // events for the audit; honor the opt-in contract on
                // this exit too.
                if (!collectEvents)
                    result.events.clear();
                return std::move(result);
            }
            applyDecisions(link, decisionScratch, 0);
        }

        resumeFrom = 1;
        return execute();
    }

    /** Run the configured segment; finish or snapshot-and-pause. */
    RunResult
    execute()
    {
        if (eventMode)
            runEventDriven(resumeFrom);
        else
            runReference(resumeFrom);

        if (result.status == RunStatus::kPaused)
            return pauseSnapshot();
        return finish();
    }

    /** Terminal-status tail: settle, audit, move the result out. */
    RunResult
    finish()
    {
        isPaused = false;
        result.stats.cycles = result.cycles;
        accumulateQueueStats(result.stats);
        hwEvents = std::max(hwEvents, result.events.size());
        hwReleases = std::max(hwReleases, result.releases.size());
        if (doAudit && !runLabels->empty()) {
            result.audit = auditAssignments(program, competing, *runLabels,
                                            result.events);
        }
        if (!collectEvents)
            result.events.clear();
        return std::move(result);
    }

    /**
     * Pause tail: keep the in-flight result accumulating internally
     * and hand the caller a *copy*, normalized to exactly what the
     * dense reference kernel would report at this cycle — queue stats
     * settled through the pause cycle, sleeping cells charged their
     * lazy blocked spans (into the copy only; the internal lazy
     * accounting continues untouched when the run resumes).
     */
    RunResult
    pauseSnapshot()
    {
        isPaused = true;
        resumeFrom = result.cycles + 1;
        // The labels may be borrowed from the caller's RunRequest,
        // which can die before resume(); own them now. (The audit at
        // finish() and adoptState both read them later.)
        if (runLabels != &ownedLabels) {
            ownedLabels = *runLabels;
            runLabels = &ownedLabels;
        }

        // Audit-only runs accumulate the full event log internally
        // (needEvents) but must not hand it out: stash it across the
        // copy instead of deep-copying it into the snapshot only to
        // clear it — on large runs with many pause windows that copy
        // would dominate the pause cost.
        std::vector<AssignmentEvent> stash;
        if (!collectEvents)
            result.events.swap(stash);
        RunResult snap = result;
        if (!collectEvents)
            result.events.swap(stash);
        snap.stats.cycles = snap.cycles;
        accumulateQueueStats(snap.stats);
        if (eventMode)
            chargeLazyBlockedSpans(snap.cycles, snap.stats);
        return snap;
    }

    RunResult
    resume(Cycle pause_at)
    {
        if (!isPaused) {
            RunResult bad;
            bad.status = RunStatus::kConfigError;
            bad.error = "resume() called with no paused run";
            return bad;
        }
        isPaused = false;
        pauseTarget = pause_at;
        return execute();
    }

    /**
     * Rebuild the event kernel's auxiliary sets from adopted machine
     * state. Conservative where exactness costs nothing: every
     * non-done cell wakes (a spurious visit blocks again and accounts
     * identically to the dense kernel) and every routed link gets a
     * policy recheck (the dense kernel ticks every link every cycle);
     * the queue-event calendar and hot/pending link sets are rebuilt
     * exactly from the queues and crossings.
     */
    void
    rebuildEventState()
    {
        activeCells.clear();
        nextCycleWakes.clear();
        wakeScratch.clear();
        timedWakes.clear();
        fwdLinks.clear();
        pendingLinks.clear();
        recheckList.clear();
        queueEvents.clear();
        queueEventsHeaped = 0;
        queueEventCompactLimit = 64;

        doneCells = static_cast<int>(cells.size() - programCells.size());
        for (CellId c : programCells) {
            cellWaitLink[c] = kInvalidLink;
            waiterNext[c] = kInvalidCell;
            if (cells[c].done())
                ++doneCells;
            else if (!(faultsActive && cellDead[c]))
                activeCells.insert(c); // dead cells never re-activate
        }
        for (LinkIndex l : routedLinksDesc) {
            waiterHead[l] = kInvalidCell;
            recheckFlag[l] = 0;
        }
        for (LinkIndex l : routedLinksDesc) {
            LinkState& link = links[l];
            int fwd = 0;
            for (HwQueue& q : link.queues()) {
                if (q.empty())
                    continue;
                // Every non-empty queue gets a live calendar entry
                // (the invariant the timed-event check relies on). A
                // non-empty queue is necessarily assigned.
                scheduleQueueEvent(link, q);
                if (!q.finalHop())
                    ++fwd;
            }
            fwdCount[l] = fwd;
            if (fwd > 0)
                fwdLinks.insert(l);
            int pend = 0;
            for (const Crossing& c : link.crossings()) {
                if (c.phase == CrossingPhase::kRequested)
                    ++pend;
            }
            pendingCount[l] = pend;
            if (pend > 0)
                pendingLinks.insert(l);
            markRecheck(l);
        }
    }

    bool
    adoptFrom(const Impl& o)
    {
        if (!o.isPaused || !configOk || !o.configOk)
            return false;
        // Same machine, same semantics; only the kernel may differ.
        if (&program != &o.program || &spec != &o.spec)
            return false;
        if (options.memoryToMemory != o.options.memoryToMemory ||
            options.memAccessCost != o.options.memAccessCost)
            return false;

        arena.copyMachineStateFrom(o.arena);
        writeSeq = o.writeSeq;
        readSeq = o.readSeq;
        result = o.result; // the accumulated partial result, deep copy

        // Adopt the donor's fault state wholesale. The plan pointer is
        // shared (the caller owns its lifetime); the derived flags are
        // copied sparsely via the donor's touched lists. Queue clamps
        // travelled with the arena copy above.
        clearFaultState();
        faults = o.faults;
        faultsActive = o.faultsActive;
        faultCursor = o.faultCursor;
        faultTouchedLinks = o.faultTouchedLinks;
        faultTouchedCells = o.faultTouchedCells;
        degradedQueues = o.degradedQueues;
        activeStalls = o.activeStalls;
        for (LinkIndex l : faultTouchedLinks) {
            linkDead[l] = o.linkDead[l];
            linkStallUntil[l] = o.linkStallUntil[l];
        }
        for (CellId c : faultTouchedCells)
            cellDead[c] = o.cellDead[c];

        ownedLabels = *o.runLabels;
        runLabels = &ownedLabels;
        adoptedPolicy = o.policy->clone();
        policy = adoptedPolicy.get();
        observer = o.observer;
        maxCycles = o.maxCycles;
        doAudit = o.doAudit;
        collectEvents = o.collectEvents;
        needEvents = o.needEvents;
        collectReleases = o.collectReleases;
        collectTiming = o.collectTiming;
        collectReceived = o.collectReceived;

        resumeFrom = o.resumeFrom;
        pauseTarget = 0;
        isPaused = true;

        // Dense-normalize the blocked-cycle accounting. An
        // event-driven donor charges sleeping cells lazily at their
        // next visit, so its internal stats are short the spans
        // [lastVisitCycle+1, pause]; charge those now. A dense donor
        // already charged every cycle (and never moves the visit
        // cursor), so only the cursor is brought up to date. Either
        // way, every live cell leaves here with its cursor at the
        // pause cycle and stats exactly as the dense kernel would
        // report them — the common baseline both kernels accumulate
        // identically from.
        const Cycle pauseCycle = resumeFrom - 1;
        if (o.eventMode)
            chargeLazyBlockedSpans(pauseCycle, result.stats);
        for (CellId c : programCells) {
            if (!cells[c].done())
                cells[c].lastVisitCycle = pauseCycle;
        }

        if (eventMode)
            rebuildEventState();
        return true;
    }

    std::uint64_t
    machineDigest() const
    {
        std::uint64_t h = arena.machineDigest();
        for (int s : writeSeq)
            h = fnv(h, static_cast<std::uint64_t>(s));
        for (int s : readSeq)
            h = fnv(h, static_cast<std::uint64_t>(s));
        return h;
    }

    // -----------------------------------------------------------------
    // Checkpoint persistence (crash resume across processes)
    // -----------------------------------------------------------------

    bool
    saveCheckpointTo(std::vector<std::uint8_t>& out) const
    {
        if (!isPaused)
            return false;
        // Only stats-level runs are persistable: the opt-in result
        // vectors (events, releases, timing, received, audit input)
        // are not serialized, and silently resuming without them
        // would break the bit-identity contract.
        if (needEvents || collectReleases || collectTiming ||
            collectReceived || doAudit)
            return false;
        ByteWriter w(out);
        w.put(kCheckpointMagic);
        w.put(kCheckpointVersion);
        w.put(machineDigest());
        // The restoring session needs to know whether these stats
        // were accumulated lazily (event kernel: sleeping cells are
        // charged at their next visit) to dense-normalize them — the
        // same boundary adjustment adoptFrom makes.
        w.put(static_cast<std::uint8_t>(eventMode ? 1 : 0));
        // The fault plan itself is not serialized — the restoring
        // caller must supply the identical plan in its RunRequest and
        // this digest is the end-to-end check. Derived flags are
        // rebuilt by replaying the plan up to the pause cycle; the
        // queue capacity clamps travel with the arena pools.
        w.put(faults != nullptr ? faults->digest()
                                : std::uint64_t{0});
        w.put(resumeFrom);
        w.put(result.cycles);
        w.putVector(writeSeq);
        w.putVector(readSeq);
        // The *internal* lazily-accumulated statistics, not the
        // dense-normalized snapshot run() handed out: restore
        // continues the lazy accounting exactly where it stopped
        // (queue stat cursors and cell visit clocks travel with the
        // machine pools below).
        saveStats(w, result.stats);
        std::vector<std::uint64_t> policyState;
        policy->saveState(policyState);
        w.putVector(policyState);
        arena.serializeMachineState(out);
        return true;
    }

    bool
    restoreCheckpointFrom(const RunRequest& request,
                          const std::uint8_t* data, std::size_t size)
    {
        isPaused = false; // failure must not leave a bogus paused run
        if (!configOk || request.collect != Collect::kNone)
            return false;
        ByteReader r(data, size);
        if (r.get<std::uint32_t>() != kCheckpointMagic ||
            r.get<std::uint32_t>() != kCheckpointVersion)
            return false;
        const std::uint64_t digest = r.get<std::uint64_t>();
        const bool writerWasEventKernel = r.get<std::uint8_t>() != 0;
        const std::uint64_t planDigest = r.get<std::uint64_t>();
        if (planDigest != (request.faults != nullptr
                               ? request.faults->digest()
                               : std::uint64_t{0}))
            return false; // wrong/missing plan: refuse, don't diverge
        const Cycle resume_from = r.get<Cycle>();
        const Cycle cycles = r.get<Cycle>();
        std::vector<int> wseq;
        std::vector<int> rseq;
        if (!r.getVector(wseq) || !r.getVector(rseq) ||
            wseq.size() != writeSeq.size() ||
            rseq.size() != readSeq.size())
            return false;
        SimStats stats;
        if (!loadStats(r, stats) ||
            stats.perCellBlocked.size() != cells.size())
            return false;
        std::vector<std::uint64_t> policyState;
        if (!r.getVector(policyState) || !r.ok())
            return false;
        if (!arena.deserializeMachineState(data + (size - r.remaining()),
                                           r.remaining()))
            return false;
        writeSeq = std::move(wseq);
        readSeq = std::move(rseq);
        // The digest recorded at save time covers everything restored
        // above; recomputing it is the end-to-end torn/mismatched-
        // checkpoint check (a failed restore leaves machine state
        // unspecified — the next run() resets it all anyway).
        if (machineDigest() != digest)
            return false;

        ++runs;
        doAudit = false;
        collectEvents = false;
        needEvents = false;
        collectReleases = false;
        collectTiming = false;
        collectReceived = false;
        observer = request.observer;
        maxCycles = request.maxCycles;
        ownedLabels = resolveLabels(request, runNeedsLabels(request));
        runLabels = &ownedLabels;
        adoptedPolicy.reset();
        policy = &getPolicy(request.policy, *runLabels, request.seed);
        if (!policy->loadState(policyState))
            return false;

        result.status = RunStatus::kPaused;
        result.cycles = cycles;
        result.error.clear();
        result.stats = std::move(stats);
        result.deadlock = DeadlockReport{};
        result.events.clear();
        result.releases.clear();
        result.audit = AuditReport{};
        result.msgTiming.clear();
        result.received.clear();
        result.labelsUsed = *runLabels;

        resumeFrom = resume_from;
        pauseTarget = 0;

        // Rebuild the fault-derived flags by replaying the plan's due
        // events. Queue clamps were already restored with the arena
        // pools (degradeQueue just re-applies the same values); the
        // event-kernel side effects land on state rebuildEventState()
        // redoes below.
        clearFaultState();
        faults = request.faults;
        faultsActive = faults != nullptr && !faults->empty();
        if (faultsActive)
            reapplyFaultsThrough(resumeFrom - 1);

        // Dense-normalize the blocked-cycle accounting exactly as
        // adoptFrom does: an event-kernel writer's stats are short
        // the spans its sleeping cells had not yet been charged
        // (their visit cursors travelled with the cell pool); a dense
        // writer's are already complete. Either way every live cell
        // leaves here with its cursor at the pause cycle — the common
        // baseline both kernels continue identically from.
        const Cycle pauseCycle = resumeFrom - 1;
        if (writerWasEventKernel)
            chargeLazyBlockedSpans(pauseCycle, result.stats);
        for (CellId c : programCells) {
            if (!cells[c].done())
                cells[c].lastVisitCycle = pauseCycle;
        }

        isPaused = true;
        if (eventMode)
            rebuildEventState();
        return true;
    }
};

SimSession::SimSession(const Program& program, const MachineSpec& spec,
                       SessionOptions options)
    : impl_(std::make_unique<Impl>(
          CompiledProgram::compile(program, spec.topo, options.labels,
                                   options.precomputeLabels),
          spec, std::move(options)))
{}

SimSession::SimSession(std::shared_ptr<const CompiledProgram> compiled,
                       const MachineSpec& spec, SessionOptions options)
    : impl_(std::make_unique<Impl>(std::move(compiled), spec,
                                   std::move(options)))
{}

SimSession::~SimSession() = default;
SimSession::SimSession(SimSession&&) noexcept = default;
SimSession& SimSession::operator=(SimSession&&) noexcept = default;

RunResult
SimSession::run(const RunRequest& request)
{
    return impl_->run(request);
}

RunResult
SimSession::resume(Cycle pauseAt)
{
    return impl_->resume(pauseAt);
}

bool
SimSession::paused() const
{
    return impl_->isPaused;
}

bool
SimSession::adoptState(const SimSession& other)
{
    return impl_->adoptFrom(*other.impl_);
}

std::uint64_t
SimSession::machineDigest() const
{
    return impl_->machineDigest();
}

bool
SimSession::valid() const
{
    return impl_->configOk;
}

const std::string&
SimSession::error() const
{
    return impl_->firstError;
}

const std::shared_ptr<const CompiledProgram>&
SimSession::compiled() const
{
    return impl_->compiled;
}

bool
SimSession::saveCheckpoint(std::vector<std::uint8_t>& out) const
{
    return impl_->saveCheckpointTo(out);
}

bool
SimSession::restoreCheckpoint(const RunRequest& request,
                              const std::uint8_t* data, std::size_t size)
{
    return impl_->restoreCheckpointFrom(request, data, size);
}

bool
SimSession::restoreCheckpoint(const RunRequest& request,
                              const std::vector<std::uint8_t>& bytes)
{
    return impl_->restoreCheckpointFrom(request, bytes.data(),
                                        bytes.size());
}

const std::vector<std::int64_t>&
SimSession::labels()
{
    if (!impl_->configOk)
        return kNoLabels;
    return impl_->defaultLabels();
}

int
SimSession::runCount() const
{
    return impl_->runs;
}

} // namespace syscomm::sim
