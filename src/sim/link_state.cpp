#include "sim/link_state.h"

#include <algorithm>
#include <cassert>

namespace syscomm::sim {

LinkState::LinkState(LinkIndex index, int num_queues, int capacity,
                     int ext_capacity, int ext_penalty)
    : index_(index)
{
    assert(num_queues >= 1);
    queues_.reserve(num_queues);
    for (int q = 0; q < num_queues; ++q)
        queues_.emplace_back(q, index, capacity, ext_capacity, ext_penalty);
}

void
LinkState::resetRun()
{
    for (HwQueue& q : queues_)
        q.reset();
    for (Crossing& c : crossings_) {
        c.phase = CrossingPhase::kIdle;
        c.queueId = -1;
        c.requestedAt = -1;
        c.assignedAt = -1;
    }
}

namespace {

/** First crossing_index_ entry with message >= msg. */
std::vector<std::pair<MessageId, int>>::const_iterator
indexSeek(const std::vector<std::pair<MessageId, int>>& index,
          MessageId msg)
{
    return std::lower_bound(
        index.begin(), index.end(), msg,
        [](const std::pair<MessageId, int>& entry, MessageId m) {
            return entry.first < m;
        });
}

} // namespace

void
LinkState::addCrossing(MessageId msg, LinkDir dir, int hop_index, int words)
{
    auto it = indexSeek(crossing_index_, msg);
    assert((it == crossing_index_.end() || it->first != msg) &&
           "a route crosses each link at most once");
    // crossings_ keeps registration order (the policies' scan order);
    // only the lookup index is sorted by message.
    crossing_index_.insert(
        crossing_index_.begin() + (it - crossing_index_.begin()),
        {msg, static_cast<int>(crossings_.size())});
    Crossing c;
    c.msg = msg;
    c.dir = dir;
    c.hopIndex = hop_index;
    c.words = words;
    crossings_.push_back(c);
}

Crossing&
LinkState::crossing(MessageId msg)
{
    assert(hasCrossing(msg));
    return crossings_[indexSeek(crossing_index_, msg)->second];
}

const Crossing&
LinkState::crossing(MessageId msg) const
{
    assert(hasCrossing(msg));
    return crossings_[indexSeek(crossing_index_, msg)->second];
}

bool
LinkState::hasCrossing(MessageId msg) const
{
    auto it = indexSeek(crossing_index_, msg);
    return it != crossing_index_.end() && it->first == msg;
}

int
LinkState::numFreeQueues() const
{
    int free = 0;
    for (const HwQueue& q : queues_) {
        if (q.isFree())
            ++free;
    }
    return free;
}

int
LinkState::findFreeQueue() const
{
    for (const HwQueue& q : queues_) {
        if (q.isFree())
            return q.id();
    }
    return -1;
}

void
LinkState::request(MessageId msg, Cycle now)
{
    Crossing& c = crossing(msg);
    assert(c.phase == CrossingPhase::kIdle);
    c.phase = CrossingPhase::kRequested;
    c.requestedAt = now;
}

void
LinkState::assignMsg(MessageId msg, int queue_id, Cycle now)
{
    Crossing& c = crossing(msg);
    assert(c.phase == CrossingPhase::kIdle ||
           c.phase == CrossingPhase::kRequested);
    c.phase = CrossingPhase::kAssigned;
    c.queueId = queue_id;
    c.assignedAt = now;
    queues_[queue_id].assign(msg, c.dir, c.words, now, c.finalHop);
}

void
LinkState::finishMsg(MessageId msg, Cycle now)
{
    Crossing& c = crossing(msg);
    assert(c.phase == CrossingPhase::kAssigned);
    queues_[c.queueId].release(now);
    c.phase = CrossingPhase::kDone;
    c.queueId = -1;
}

void
LinkState::beginCycle(Cycle now)
{
    for (HwQueue& q : queues_)
        q.beginCycle(now);
}

} // namespace syscomm::sim
