#include "sim/link_state.h"

#include <cassert>

namespace syscomm::sim {

LinkState::LinkState(LinkIndex index, int num_queues, int capacity,
                     int ext_capacity, int ext_penalty)
    : index_(index)
{
    assert(num_queues >= 1);
    queues_.reserve(num_queues);
    for (int q = 0; q < num_queues; ++q)
        queues_.emplace_back(q, index, capacity, ext_capacity, ext_penalty);
}

void
LinkState::resetRun()
{
    for (HwQueue& q : queues_)
        q.reset();
    for (Crossing& c : crossings_) {
        c.phase = CrossingPhase::kIdle;
        c.queueId = -1;
        c.requestedAt = -1;
        c.assignedAt = -1;
    }
}

void
LinkState::addCrossing(MessageId msg, LinkDir dir, int hop_index, int words)
{
    if (msg >= static_cast<MessageId>(crossing_index_.size()))
        crossing_index_.resize(msg + 1, -1);
    assert(crossing_index_[msg] == -1 &&
           "a route crosses each link at most once");
    crossing_index_[msg] = static_cast<int>(crossings_.size());
    Crossing c;
    c.msg = msg;
    c.dir = dir;
    c.hopIndex = hop_index;
    c.words = words;
    crossings_.push_back(c);
}

Crossing&
LinkState::crossing(MessageId msg)
{
    assert(hasCrossing(msg));
    return crossings_[crossing_index_[msg]];
}

const Crossing&
LinkState::crossing(MessageId msg) const
{
    assert(hasCrossing(msg));
    return crossings_[crossing_index_[msg]];
}

bool
LinkState::hasCrossing(MessageId msg) const
{
    return msg >= 0 && msg < static_cast<MessageId>(crossing_index_.size()) &&
           crossing_index_[msg] != -1;
}

int
LinkState::numFreeQueues() const
{
    int free = 0;
    for (const HwQueue& q : queues_) {
        if (q.isFree())
            ++free;
    }
    return free;
}

int
LinkState::findFreeQueue() const
{
    for (const HwQueue& q : queues_) {
        if (q.isFree())
            return q.id();
    }
    return -1;
}

void
LinkState::request(MessageId msg, Cycle now)
{
    Crossing& c = crossing(msg);
    assert(c.phase == CrossingPhase::kIdle);
    c.phase = CrossingPhase::kRequested;
    c.requestedAt = now;
}

void
LinkState::assignMsg(MessageId msg, int queue_id, Cycle now)
{
    Crossing& c = crossing(msg);
    assert(c.phase == CrossingPhase::kIdle ||
           c.phase == CrossingPhase::kRequested);
    c.phase = CrossingPhase::kAssigned;
    c.queueId = queue_id;
    c.assignedAt = now;
    queues_[queue_id].assign(msg, c.dir, c.words, now);
}

void
LinkState::finishMsg(MessageId msg, Cycle now)
{
    Crossing& c = crossing(msg);
    assert(c.phase == CrossingPhase::kAssigned);
    queues_[c.queueId].release(now);
    c.phase = CrossingPhase::kDone;
    c.queueId = -1;
}

void
LinkState::beginCycle(Cycle now)
{
    for (HwQueue& q : queues_)
        q.beginCycle(now);
}

} // namespace syscomm::sim
