#include "sim/link_state.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace syscomm::sim {

LinkState::LinkState(LinkIndex index, Span<HwQueue> queues,
                     Span<Crossing> crossing_storage,
                     Span<std::pair<MessageId, int>> index_storage)
    : index_(index),
      queues_(queues),
      crossings_(crossing_storage.data()),
      crossing_index_(index_storage.data()),
      max_crossings_(static_cast<int>(crossing_storage.size()))
{
    assert(!queues_.empty());
    assert(crossing_storage.size() == index_storage.size());
}

void
LinkState::resetRun()
{
    for (HwQueue& q : queues_)
        q.reset();
    for (int i = 0; i < num_crossings_; ++i) {
        Crossing& c = crossings_[i];
        c.phase = CrossingPhase::kIdle;
        c.queueId = -1;
        c.requestedAt = -1;
        c.assignedAt = -1;
    }
}

namespace {

/** First crossing-index entry with message >= msg. */
const std::pair<MessageId, int>*
indexSeek(const std::pair<MessageId, int>* index, int count, MessageId msg)
{
    return std::lower_bound(
        index, index + count, msg,
        [](const std::pair<MessageId, int>& entry, MessageId m) {
            return entry.first < m;
        });
}

} // namespace

void
LinkState::addCrossing(MessageId msg, LinkDir dir, int hop_index, int words)
{
    // Unconditional (not assert): the crossing span is a fixed arena
    // slice — where the owning vector this replaced would have grown,
    // writing past capacity now lands in the *next link's* pool slots.
    // Registration runs once at session build, so the branch is free,
    // and silent cross-link corruption in NDEBUG builds is not.
    if (num_crossings_ >= max_crossings_) {
        std::fprintf(stderr,
                     "LinkState::addCrossing: link %d crossing span "
                     "full (%d) — arena sized from a different route "
                     "set?\n",
                     static_cast<int>(index_), max_crossings_);
        std::abort();
    }
    const std::pair<MessageId, int>* it =
        indexSeek(crossing_index_, num_crossings_, msg);
    assert((it == crossing_index_ + num_crossings_ || it->first != msg) &&
           "a route crosses each link at most once");
    // Shift the sorted index tail up one slot to open the insertion
    // point (the few messages per link make this cheap).
    auto* slot = const_cast<std::pair<MessageId, int>*>(it);
    std::move_backward(slot, crossing_index_ + num_crossings_,
                       crossing_index_ + num_crossings_ + 1);
    *slot = {msg, num_crossings_};
    Crossing c;
    c.msg = msg;
    c.dir = dir;
    c.hopIndex = hop_index;
    c.words = words;
    crossings_[num_crossings_] = c;
    ++num_crossings_;
}

Crossing&
LinkState::crossing(MessageId msg)
{
    assert(hasCrossing(msg));
    return crossings_[indexSeek(crossing_index_, num_crossings_, msg)
                          ->second];
}

const Crossing&
LinkState::crossing(MessageId msg) const
{
    assert(hasCrossing(msg));
    return crossings_[indexSeek(crossing_index_, num_crossings_, msg)
                          ->second];
}

bool
LinkState::hasCrossing(MessageId msg) const
{
    const std::pair<MessageId, int>* it =
        indexSeek(crossing_index_, num_crossings_, msg);
    return it != crossing_index_ + num_crossings_ && it->first == msg;
}

int
LinkState::numFreeQueues() const
{
    int free = 0;
    for (const HwQueue& q : queues()) {
        if (q.isFree())
            ++free;
    }
    return free;
}

int
LinkState::findFreeQueue() const
{
    for (const HwQueue& q : queues()) {
        if (q.isFree())
            return q.id();
    }
    return -1;
}

void
LinkState::request(MessageId msg, Cycle now)
{
    Crossing& c = crossing(msg);
    assert(c.phase == CrossingPhase::kIdle);
    c.phase = CrossingPhase::kRequested;
    c.requestedAt = now;
}

void
LinkState::assignMsg(MessageId msg, int queue_id, Cycle now)
{
    Crossing& c = crossing(msg);
    assert(c.phase == CrossingPhase::kIdle ||
           c.phase == CrossingPhase::kRequested);
    c.phase = CrossingPhase::kAssigned;
    c.queueId = queue_id;
    c.assignedAt = now;
    queues_[static_cast<std::size_t>(queue_id)].assign(msg, c.dir, c.words,
                                                       now, c.finalHop);
}

void
LinkState::finishMsg(MessageId msg, Cycle now)
{
    Crossing& c = crossing(msg);
    assert(c.phase == CrossingPhase::kAssigned);
    queues_[static_cast<std::size_t>(c.queueId)].release(now);
    c.phase = CrossingPhase::kDone;
    c.queueId = -1;
}

void
LinkState::beginCycle(Cycle now)
{
    for (HwQueue& q : queues_)
        q.beginCycle(now);
}

} // namespace syscomm::sim
