#pragma once

/**
 * @file
 * Ordered index sets for the event-driven kernel's active-set
 * bookkeeping: contiguous storage, no per-node allocation on the hot
 * word-transition path.
 *
 * Two implementations share one contract:
 *
 *  - BitIndexSet — a hierarchical bitmap (one leaf bit per index plus
 *    64-way summary levels). insert/erase are O(levels) ≈ O(1) and the
 *    cursor queries are O(levels), independent of how many elements
 *    are present, so a dense-active phase on a 100k-cell array costs
 *    the same per mutation as a sparse one. This is what the kernel
 *    uses.
 *  - SortedIndexSet — the original sorted vector. Mutations are
 *    O(size); kept as the simple reference the randomized stress test
 *    (tests/test_active_set.cpp) checks both structures against.
 *
 * The cursor accessors (largest/largestBelow, firstAtLeast) make
 * mutation during iteration well-defined: a scan re-seeks by value
 * each step, so elements inserted behind the cursor are skipped and
 * elements inserted ahead of it are visited this pass — exactly the
 * semantics a std::set iterator gives, without the node allocations.
 */

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace syscomm::sim {

/**
 * Ordered set of integer indices in [0, universe) over a hierarchical
 * bitmap. All mutations and cursor queries cost O(levels) where
 * levels = ceil(log64(universe)) — 3 for a 100k-cell array.
 *
 * Unlike SortedIndexSet, the universe must be declared up front via
 * resize(); SimSession sizes each set once at construction.
 */
template <typename Index, Index kInvalid>
class BitIndexSet
{
  public:
    /** Declare the index universe [0, n) and drop every element. */
    void
    resize(Index n)
    {
        assert(n >= 0);
        universe_ = n;
        levels_.clear();
        std::size_t words = wordsFor(static_cast<std::size_t>(n));
        while (true) {
            levels_.emplace_back(words, 0);
            if (words <= 1)
                break;
            words = wordsFor(words);
        }
        size_ = 0;
    }

    bool empty() const { return size_ == 0; }
    int size() const { return size_; }

    void
    insert(Index i)
    {
        assert(i >= 0 && i < universe_);
        std::size_t bit = static_cast<std::size_t>(i);
        for (std::vector<std::uint64_t>& level : levels_) {
            std::uint64_t& word = level[bit >> 6];
            std::uint64_t mask = std::uint64_t{1} << (bit & 63);
            if (word & mask) {
                if (&level == &levels_.front())
                    return; // already present
                break; // summaries above are already set
            }
            bool was_empty_word = word == 0;
            word |= mask;
            if (!was_empty_word)
                break; // summary bit already set
            bit >>= 6;
        }
        ++size_;
    }

    void
    erase(Index i)
    {
        assert(i >= 0);
        if (i >= universe_)
            return;
        std::size_t bit = static_cast<std::size_t>(i);
        for (std::vector<std::uint64_t>& level : levels_) {
            std::uint64_t& word = level[bit >> 6];
            std::uint64_t mask = std::uint64_t{1} << (bit & 63);
            if (!(word & mask)) {
                if (&level == &levels_.front())
                    return; // not present
                break;
            }
            word &= ~mask;
            if (word != 0)
                break; // other indices keep the summary bit alive
            bit >>= 6;
        }
        --size_;
    }

    bool
    contains(Index i) const
    {
        if (i < 0 || i >= universe_)
            return false;
        std::size_t bit = static_cast<std::size_t>(i);
        return (levels_.front()[bit >> 6] >> (bit & 63)) & 1;
    }

    /**
     * Drop every element, keeping the storage. Costs O(elements x
     * levels), so resetting after a completed run (empty set) is free
     * and never O(universe).
     */
    void
    clear()
    {
        Index i = firstAtLeast(0);
        while (i != kInvalid) {
            erase(i);
            i = firstAtLeast(i);
        }
    }

    Index
    largest() const
    {
        return largestBelow(universe_);
    }

    /** Largest element strictly below @p bound (kInvalid if none). */
    Index
    largestBelow(Index bound) const
    {
        if (size_ == 0 || bound <= 0)
            return kInvalid;
        if (bound > universe_)
            bound = universe_;
        // Candidate bit position at the current level; below the leaf
        // word that failed, the predecessor word is (word index - 1).
        std::size_t cand = static_cast<std::size_t>(bound) - 1;
        for (std::size_t level = 0; level < levels_.size(); ++level) {
            std::uint64_t word = levels_[level][cand >> 6] &
                                 (~std::uint64_t{0} >> (63 - (cand & 63)));
            if (word != 0) {
                std::size_t found =
                    (cand & ~std::size_t{63}) + highBit(word);
                return descendHigh(level, found);
            }
            if ((cand >> 6) == 0)
                return kInvalid; // no lower word at any level
            cand = (cand >> 6) - 1;
        }
        return kInvalid;
    }

    /** Smallest element at or above @p bound (kInvalid if none). */
    Index
    firstAtLeast(Index bound) const
    {
        if (size_ == 0 || bound >= universe_)
            return kInvalid;
        if (bound < 0)
            bound = 0;
        std::size_t cand = static_cast<std::size_t>(bound);
        for (std::size_t level = 0; level < levels_.size(); ++level) {
            if ((cand >> 6) < levels_[level].size()) {
                std::uint64_t word = levels_[level][cand >> 6] &
                                     (~std::uint64_t{0} << (cand & 63));
                if (word != 0) {
                    std::size_t found =
                        (cand & ~std::size_t{63}) + lowBit(word);
                    return descendLow(level, found);
                }
            }
            // No hit in this word: the successor, if any, lives in a
            // later word — a later bit at the level above.
            cand = (cand >> 6) + 1;
        }
        return kInvalid;
    }

  private:
    static std::size_t
    wordsFor(std::size_t bits)
    {
        return bits == 0 ? 1 : (bits + 63) / 64;
    }

    static unsigned lowBit(std::uint64_t w)
    {
        return static_cast<unsigned>(__builtin_ctzll(w));
    }
    static unsigned highBit(std::uint64_t w)
    {
        return 63u - static_cast<unsigned>(__builtin_clzll(w));
    }

    /** Walk a set summary bit down to the smallest leaf below it. */
    Index
    descendLow(std::size_t level, std::size_t bit) const
    {
        while (level > 0) {
            --level;
            bit = (bit << 6) + lowBit(levels_[level][bit]);
        }
        return static_cast<Index>(bit);
    }

    /** Walk a set summary bit down to the largest leaf below it. */
    Index
    descendHigh(std::size_t level, std::size_t bit) const
    {
        while (level > 0) {
            --level;
            bit = (bit << 6) + highBit(levels_[level][bit]);
        }
        return static_cast<Index>(bit);
    }

    /** levels_[0] = leaf bits; levels_[k] summarizes levels_[k-1]. */
    std::vector<std::vector<std::uint64_t>> levels_;
    Index universe_ = 0;
    int size_ = 0;
};

/** Ordered set of small integer indices over a sorted vector. */
template <typename Index, Index kInvalid>
class SortedIndexSet
{
  public:
    bool empty() const { return v_.empty(); }
    int size() const { return static_cast<int>(v_.size()); }

    void
    insert(Index i)
    {
        auto it = std::lower_bound(v_.begin(), v_.end(), i);
        if (it == v_.end() || *it != i)
            v_.insert(it, i);
    }

    void
    erase(Index i)
    {
        auto it = std::lower_bound(v_.begin(), v_.end(), i);
        if (it != v_.end() && *it == i)
            v_.erase(it);
    }

    bool
    contains(Index i) const
    {
        auto it = std::lower_bound(v_.begin(), v_.end(), i);
        return it != v_.end() && *it == i;
    }

    /** Drop every element, keeping the storage for reuse. */
    void clear() { v_.clear(); }

    Index
    largest() const
    {
        return v_.empty() ? kInvalid : v_.back();
    }

    /** Largest element strictly below @p bound (kInvalid if none). */
    Index
    largestBelow(Index bound) const
    {
        auto it = std::lower_bound(v_.begin(), v_.end(), bound);
        if (it == v_.begin())
            return kInvalid;
        return *std::prev(it);
    }

    /** Smallest element at or above @p bound (kInvalid if none). */
    Index
    firstAtLeast(Index bound) const
    {
        auto it = std::lower_bound(v_.begin(), v_.end(), bound);
        return it == v_.end() ? kInvalid : *it;
    }

    const std::vector<Index>& items() const { return v_; }

  private:
    std::vector<Index> v_; ///< ascending, unique
};

} // namespace syscomm::sim
