#pragma once

/**
 * @file
 * Small ordered index sets for the event-driven kernel's active-set
 * bookkeeping: contiguous storage, no per-node allocation on the hot
 * word-transition path. Mutations are O(size), but the active sets
 * these track are small by design — membership only changes when a
 * queue flips empty/non-empty, a request is granted, or a cell blocks
 * or wakes.
 *
 * The cursor accessors (largest/largestBelow, firstAtLeast) make
 * mutation during iteration well-defined: a scan re-seeks by value
 * each step, so elements inserted behind the cursor are skipped and
 * elements inserted ahead of it are visited this pass — exactly the
 * semantics a std::set iterator gives, without the node allocations.
 */

#include <algorithm>
#include <vector>

namespace syscomm::sim {

/** Ordered set of small integer indices over contiguous storage. */
template <typename Index, Index kInvalid>
class SortedIndexSet
{
  public:
    bool empty() const { return v_.empty(); }
    int size() const { return static_cast<int>(v_.size()); }

    void
    insert(Index i)
    {
        auto it = std::lower_bound(v_.begin(), v_.end(), i);
        if (it == v_.end() || *it != i)
            v_.insert(it, i);
    }

    void
    erase(Index i)
    {
        auto it = std::lower_bound(v_.begin(), v_.end(), i);
        if (it != v_.end() && *it == i)
            v_.erase(it);
    }

    bool
    contains(Index i) const
    {
        auto it = std::lower_bound(v_.begin(), v_.end(), i);
        return it != v_.end() && *it == i;
    }

    /** Drop every element, keeping the storage for reuse. */
    void clear() { v_.clear(); }

    Index
    largest() const
    {
        return v_.empty() ? kInvalid : v_.back();
    }

    /** Largest element strictly below @p bound (kInvalid if none). */
    Index
    largestBelow(Index bound) const
    {
        auto it = std::lower_bound(v_.begin(), v_.end(), bound);
        if (it == v_.begin())
            return kInvalid;
        return *std::prev(it);
    }

    /** Smallest element at or above @p bound (kInvalid if none). */
    Index
    firstAtLeast(Index bound) const
    {
        auto it = std::lower_bound(v_.begin(), v_.end(), bound);
        return it == v_.end() ? kInvalid : *it;
    }

    const std::vector<Index>& items() const { return v_; }

  private:
    std::vector<Index> v_; ///< ascending, unique
};

} // namespace syscomm::sim
