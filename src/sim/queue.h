#pragma once

/**
 * @file
 * A hardware FIFO queue on a link.
 *
 * Queues are the contended resource of the whole paper: each link has
 * a fixed number, a queue serves one message at a time, its direction
 * is set when it is assigned, and it can be reassigned only after the
 * last word of the current message has passed through (section 2.3).
 *
 * Timing model: at most one push and one pop per cycle; a word becomes
 * visible to the consumer the cycle after it was pushed. A queue
 * optionally extends into the receiving cell's local memory (iWarp
 * "queue extension", section 8): words that overflow the hardware
 * capacity are buffered there and pay an extra access penalty when
 * they surface at the front.
 *
 * Storage is a fixed-capacity ring buffer (power-of-two mask indexing)
 * for the hardware slots plus a second fixed ring for the extension
 * words. A queue does not own either: both rings are slices of the
 * session's SimArena word pool (sim/arena.h), so every queue of a
 * machine shares one contiguous allocation — the dense-active scaling
 * work showed the former queue-owned vectors (two heap blocks per
 * queue, hundreds of thousands of blocks on a 100k-cell array) cost
 * more in cache misses than in cycles executed. Push/pop never
 * allocates, ever.
 *
 * All per-cycle bookkeeping is lazy and cycle-stamped: the one-push/
 * one-pop interlocks compare stored cycle stamps against the caller's
 * clock, and the busy/occupancy statistics are settled on demand over
 * the span since the last mutation. Nothing needs to touch an idle
 * queue every cycle, which is what makes an O(active-work) simulation
 * kernel possible.
 */

#include <algorithm>
#include <cstdint>

#include "core/types.h"
#include "sim/serial.h"
#include "sim/word.h"

namespace syscomm::sim {

/** One hardware queue: a view over SimArena-owned ring storage. */
class HwQueue
{
  public:
    /**
     * @p ring / @p ring_size: hardware slots, power-of-two sized, at
     * least @p capacity. @p spill / @p spill_size: extension slots,
     * power-of-two sized and at least @p ext_capacity, or null/0 when
     * the machine has no extension. Both are arena slices that must
     * outlive the queue; SimArena is the only production caller.
     */
    HwQueue(int id, LinkIndex link, int capacity, int ext_capacity,
            int ext_penalty, Word* ring, std::uint32_t ring_size,
            Word* spill, std::uint32_t spill_size);

    int id() const { return id_; }
    LinkIndex link() const { return link_; }

    /**
     * Return to the freshly-constructed state; the arena-backed ring
     * and spill storage is untouched (SimSession's run-many reset
     * path never reallocates).
     */
    void reset();

    /**
     * Adopt the dynamic state (assignment, ring/spill contents and
     * positions, interlock stamps, statistics) of @p other, a queue
     * of identical shape from another session over the same machine.
     * Together with SimArena::copyMachineStateFrom this is what lets
     * the sampled-oracle harness restart the dense reference kernel
     * from an event-kernel checkpoint.
     */
    void copyStateFrom(const HwQueue& other);

    /**
     * Serialize / restore the same dynamic state copyStateFrom moves
     * (the ring/spill *contents* travel with the arena word pool, so
     * only the scalars live here). loadState fails — leaving the
     * queue in a partially-written state the caller must discard —
     * when the byte stream runs short; SimArena wraps both with shape
     * checks and a whole-machine digest, so a torn or mismatched
     * checkpoint is rejected before any kernel sees it.
     */
    void saveState(ByteWriter& out) const;
    bool loadState(ByteReader& in);

    // ------------------------------------------------------------------
    // Assignment lifecycle
    // ------------------------------------------------------------------

    bool isFree() const { return assigned_ == kInvalidMessage; }
    MessageId assignedMsg() const { return assigned_; }
    LinkDir dir() const { return dir_; }
    /** Is the assigned message on its final hop here (see Crossing)? */
    bool finalHop() const { return final_hop_; }

    /**
     * Assign to a message; @p total_words of it will pass through.
     * @p final_hop mirrors the crossing's route position so per-word
     * bookkeeping can read it off the queue.
     */
    void assign(MessageId msg, LinkDir dir, int total_words, Cycle now,
                bool final_hop = false);

    /** Words of the current message that have not yet passed. */
    int wordsRemaining() const { return words_remaining_; }

    /** Reassignable once empty and the whole message has passed. */
    bool canRelease() const
    {
        return assigned_ != kInvalidMessage && empty() &&
               words_remaining_ == 0;
    }

    /** Return the queue to the free pool. */
    void release(Cycle now);

    // ------------------------------------------------------------------
    // Data movement
    // ------------------------------------------------------------------

    int size() const { return ring_count_ + spill_count_; }
    bool empty() const { return size() == 0; }
    /** Physical capacity, clamped by any fault-injected degrade. */
    int totalCapacity() const
    {
        int cap = capacity_ + ext_capacity_;
        return cap_limit_ > 0 ? std::min(cap, cap_limit_) : cap;
    }
    bool isFull() const { return size() >= totalCapacity(); }

    /**
     * Fault injection (FaultKind::kDegradeQueue): clamp the effective
     * capacity to @p cap words (>= 1). Words already buffered above
     * the clamp stay and drain normally; only new pushes obey it.
     * Cleared by reset(). 0 removes the clamp.
     */
    void setCapacityLimit(int cap) { cap_limit_ = cap; }
    int capacityLimit() const { return cap_limit_; }

    /** Can a word be pushed at cycle @p now? */
    bool canPush(Cycle now) const
    {
        return !isFull() && last_push_cycle_ != now;
    }

    /** canPush() at the queue's last settled cycle (test convenience). */
    bool canPush() const { return canPush(settled_); }

    /** Push one word (asserts canPush()). */
    void push(Word word, Cycle now);

    /** Is the front word consumable this cycle? */
    bool canPop(Cycle now) const;

    /**
     * True when this queue will change state with no external action:
     * its front word is merely waiting for time to pass (same-cycle
     * push visibility, the one-pop-per-cycle interlock, or the
     * extension access penalty). The deadlock detector must not treat
     * such a cycle as a deadlock.
     */
    bool pendingTimedEvent(Cycle now) const;

    /**
     * Earliest cycle the current front word becomes consumable
     * (ignoring the one-pop-per-cycle interlock). Queue must be
     * non-empty. Used by the event-driven kernel to schedule wake-ups.
     */
    Cycle frontReadyCycle() const
    {
        return std::max(front().enqueuedAt + 1, front_ready_at_);
    }

    const Word& front() const { return ring_[head_]; }

    /** Pop the front word (asserts canPop()). */
    Word pop(Cycle now);

    /**
     * Settle the lazy busy/occupancy statistics through the start of
     * cycle @p now. Mutations settle automatically; call this once at
     * end of run (and from the legacy beginCycle()).
     */
    void settleStats(Cycle now);

    /** Legacy per-cycle entry point; now just settles lazy stats. */
    void beginCycle(Cycle now) { settleStats(now); }

    /**
     * Fold the queue's machine-visible state (assignment, live FIFO
     * contents in order, interlock stamps, statistics) into an FNV
     * digest. Physical ring positions are excluded: two queues that
     * went through the same push/pop history digest identically no
     * matter where their heads sit.
     */
    std::uint64_t digestState(std::uint64_t h) const;

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    Cycle busyCycles() const { return busy_cycles_; }
    std::int64_t occupancySum() const { return occupancy_sum_; }
    std::int64_t wordsPushed() const { return words_pushed_; }
    std::int64_t extendedWords() const { return extended_words_; }
    std::int64_t assignmentsServed() const { return assignments_; }

  private:
    /** Recompute when the (new) front word becomes consumable. */
    void refreshFrontReady(Cycle now);

    int id_;
    LinkIndex link_;
    int capacity_;
    int ext_capacity_;
    int ext_penalty_;

    /** Hardware slots: arena ring of power-of-two length. */
    Word* ring_;
    std::uint32_t mask_ = 0;
    /** Extension slots (iWarp spillover): arena ring, FIFO. */
    Word* spill_;
    std::uint32_t spill_mask_ = 0;

    MessageId assigned_ = kInvalidMessage;
    LinkDir dir_ = LinkDir::kForward;
    bool final_hop_ = false;
    int words_remaining_ = 0;
    /** Degraded effective capacity (fault injection); 0 = no clamp. */
    int cap_limit_ = 0;

    std::uint32_t head_ = 0;
    int ring_count_ = 0;
    std::uint32_t spill_head_ = 0;
    int spill_count_ = 0;

    Cycle front_ready_at_ = 0;
    Cycle last_push_cycle_ = -1;
    Cycle last_pop_cycle_ = -1;

    /** Start-of-cycle stats are settled through this cycle. */
    Cycle settled_ = 0;
    Cycle busy_cycles_ = 0;
    std::int64_t occupancy_sum_ = 0;
    std::int64_t words_pushed_ = 0;
    std::int64_t extended_words_ = 0;
    std::int64_t assignments_ = 0;
};

} // namespace syscomm::sim
