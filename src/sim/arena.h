#pragma once

/**
 * @file
 * SimArena: one owner for every per-run-mutable simulation object.
 *
 * Before the arena, the hot state of a machine was scattered across
 * the heap — every HwQueue owned two vectors (ring + extension
 * spillover), every LinkState owned three (queues, crossings,
 * crossing index), so a 100k-cell linear array paid ~10^6 small
 * allocations at session build and, worse, a pointer chase into a
 * cold cache line per queue touched at run time. The dense-active
 * phase of bench_large_array walks essentially all of them every
 * cycle in index order, which is exactly the access pattern a
 * contiguous layout turns into prefetchable streams: the ns/cell-cycle
 * figure drifted ~2x from 4k to 100k cells on the scattered layout.
 *
 * The arena replaces all of that with six pools, each one allocation,
 * indexed by the same ids the kernels already use:
 *
 *   words          every queue's hardware ring + extension ring,
 *                  queue-major (ring then spill per queue)
 *   queues         all HwQueues, link-major (link * queuesPerLink + q)
 *   crossings      all Crossing records, link-major registration order
 *   crossingIndex  the per-link sorted (msg, slot) lookup entries,
 *                  parallel to crossings
 *   links          all LinkStates (views over the three pools above)
 *   cells          all CellRuntimes (per-cell runtime pool)
 *
 * LinkState / HwQueue hold spans into the pools instead of owning
 * storage; nothing reallocates after build(), so every pointer and
 * span is stable for the arena's lifetime and SimSession's
 * reset-in-place path just rewinds counters.
 *
 * Because the pools *are* the machine state, two more operations
 * become trivial, and the sampled-oracle equivalence harness is built
 * on them: copyMachineStateFrom() clones a mid-run machine out of
 * another session's arena (bulk pool copies plus per-object scalars),
 * and machineDigest() folds the whole machine into one hash for
 * cheap bit-identity checks at 100k-cell sizes where materializing
 * full results for comparison would dominate the test budget.
 */

#include <cstdint>
#include <utility>
#include <vector>

#include "core/machine_spec.h"
#include "core/program.h"
#include "sim/cell_exec.h"
#include "sim/link_state.h"
#include "sim/queue.h"
#include "sim/span.h"

namespace syscomm::sim {

class SimArena
{
  public:
    SimArena() = default;

    SimArena(const SimArena&) = delete;
    SimArena& operator=(const SimArena&) = delete;
    SimArena(SimArena&&) noexcept = default;
    SimArena& operator=(SimArena&&) noexcept = default;

    /**
     * Size and construct every pool for @p spec's machine running
     * @p program. @p crossings_per_link caps each link's crossing
     * span — the session counts route hops per link before building.
     * Call exactly once; all spans and pointers are stable after.
     */
    void build(const MachineSpec& spec, const Program& program,
               const std::vector<int>& crossings_per_link);

    bool built() const { return !links_.empty(); }

    Span<LinkState> links()
    {
        return {links_.data(), links_.size()};
    }
    Span<CellRuntime> cells()
    {
        return {cells_.data(), cells_.size()};
    }

    /**
     * Adopt the full mid-run machine state (queue contents and
     * scalars, crossing phases, cell runtimes) of @p other, an arena
     * built from the same program and machine spec. Static
     * registration (crossing sets, the sorted lookup index) is
     * already identical by construction and is not touched.
     */
    void copyMachineStateFrom(const SimArena& other);

    /**
     * Append the complete mid-run machine state — the same state
     * copyMachineStateFrom moves between live arenas — to @p out as a
     * flat byte stream: word and crossing pools wholesale, then the
     * per-queue and per-cell scalars. The stream is consumed by
     * deserializeMachineState on an arena built from the same program
     * and machine spec; it is the storage format behind ShapeSweep's
     * crash-resume journal.
     */
    void serializeMachineState(std::vector<std::uint8_t>& out) const;

    /**
     * Restore machine state serialized by serializeMachineState.
     * Returns false when the stream is torn or was produced by a
     * differently-shaped machine (pool sizes disagree); the arena
     * contents are unspecified after a failure and the caller must
     * not run on them. Callers wanting a stronger guarantee compare
     * machineDigest() against a digest recorded at save time —
     * SimSession::restoreCheckpoint does exactly that.
     */
    bool deserializeMachineState(const std::uint8_t* data,
                                 std::size_t size);

    /**
     * FNV-1a digest of the kernel-independent machine state. Two
     * sessions over the same program/spec that executed the same
     * machine history digest identically regardless of which kernel
     * ran it — the cheap bit-identity check behind the sampled
     * oracle. Visit-time bookkeeping (cell clocks, block reasons,
     * lazily-settled stat cursors) is excluded; see
     * CellRuntime::digestState.
     */
    std::uint64_t machineDigest() const;

    /** Total pool bytes (capacity), for RSS accounting and tests. */
    std::size_t bytesReserved() const;

    /**
     * Pool base addresses, exposed so tests can assert the
     * reset-in-place guarantee (no pool ever moves after build).
     */
    const Word* wordPool() const { return words_.data(); }
    const HwQueue* queuePool() const { return queues_.data(); }
    const Crossing* crossingPool() const { return crossings_.data(); }
    const CellRuntime* cellPool() const { return cells_.data(); }

    // ------------------------------------------------------------------
    // Free-standing builders for unit tests
    // ------------------------------------------------------------------

    /**
     * Build pools for a single link with no program (unit tests of
     * LinkState/HwQueue semantics). @p max_crossings caps later
     * addCrossing calls.
     */
    LinkState& buildSingleLink(int num_queues, int capacity,
                               int ext_capacity, int ext_penalty,
                               int max_crossings = 8);

    /** Single free-standing queue (unit tests of HwQueue semantics). */
    HwQueue& buildSingleQueue(int capacity, int ext_capacity,
                              int ext_penalty);

  private:
    void buildPools(int num_links, int queues_per_link, int capacity,
                    int ext_capacity, int ext_penalty,
                    const std::vector<int>& crossings_per_link);

    std::vector<Word> words_;
    std::vector<HwQueue> queues_;
    std::vector<Crossing> crossings_;
    std::vector<std::pair<MessageId, int>> crossing_index_;
    std::vector<LinkState> links_;
    std::vector<CellRuntime> cells_;
};

} // namespace syscomm::sim
