#pragma once

/**
 * @file
 * ShapeSweep: a shared-compile sweep driver over machine *shapes*.
 *
 * The paper's central experiments are ladders of machine shapes —
 * queue count, queue capacity and buffering variants over one program
 * — showing where systolic communication deadlocks or degrades. A
 * SimSession binds one MachineSpec, so those sweeps used to build a
 * full session per shape and re-pay the program-side compile work
 * (validation, the competing-message analysis, labeling) for every
 * rung even though only the hardware differs. ShapeSweep compiles the
 * program exactly once into a shared CompiledProgram and fans the
 * (shape × request) grid across the WorkerPool machinery SweepRunner
 * uses at *cell* granularity: each grid cell is one work item, and a
 * small per-shape session pool (sessions lazily cloned from the
 * shared CompiledProgram, bounded by maxSessionsPerShape, checked out
 * per cell) lets several workers chew on one giant rung while the
 * tiny rungs drain. A skewed ladder — one 64k-cycle rung plus a pile
 * of 256-cycle ones — no longer serializes on the worker that claimed
 * the giant shape. Results still land in grid order, runs are
 * bit-identical at any worker count, and the scheduler is TSan-clean
 * (tests/test_shape_sweep.cpp enforces all three).
 *
 * Multi-process scale: ShapeSweepOptions::shardBegin/shardEnd
 * restrict one process to a half-open cell range of the grid. A
 * sharded journal carries a kind-tagged shard-range record (CRC
 * framed, forward-skippable by old readers), and mergeSweepJournals /
 * `syscomm-cli sweep-merge` fold N shard journals into one summary
 * with per-rung digest cross-checks — the journal is append-only,
 * digested and resume-safe, so a huge sweep becomes an embarrassingly
 * parallel, crash-tolerant distributed job.
 *
 * Crash resume: with ShapeSweepOptions::journalPath set, every
 * finished row is appended to a journal file (status, cycles, stats,
 * deadlock report, machine digest), and with checkpointEvery > 0
 * long in-flight runs are periodically paused (RunRequest::pauseAt)
 * and their machine pools serialized into the same journal. A killed
 * sweep rerun with the same program, shapes, requests and journal
 * path resumes instead of restarting: journaled rows are replayed
 * verbatim, checkpointed rows continue from their snapshot, missing
 * rows run from scratch — and because runs are deterministic and
 * pause/resume is bit-exact, the resumed sweep's results are
 * bit-identical to an uninterrupted one (tests/test_shape_sweep.cpp
 * enforces this).
 *
 * Every row records SimSession::machineDigest() at its terminal
 * state, so two sweeps — on different hosts, kernels or worker
 * counts — can be compared row-for-row with one integer each: the
 * cheap cross-host determinism check CI runs.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/batch.h"
#include "sim/session.h"

namespace syscomm::serve {
class Io; // the injectable IO layer (serve/io.h)
}

namespace syscomm::sim {

/** One machine shape: a MachineSpec minus the (shared) topology. */
struct ShapeSpec
{
    /** Row label for reports, e.g. "q=4" or "cap=8". */
    std::string name;
    int queuesPerLink = 2;
    int queueCapacity = 1;
    int extensionCapacity = 0;
    int extensionPenalty = 4;
};

/** Sweep-wide knobs. */
struct ShapeSweepOptions
{
    /**
     * Session config shared by every per-shape session (kernel,
     * label override, memory model). The program-side pieces (labels,
     * precomputeLabels) parameterize the one shared CompiledProgram.
     */
    SessionOptions session;
    /** Worker threads; <= 0 picks hardware_concurrency() (which is 1
     *  when the runtime reports 0 cores). Work is stolen at (shape ×
     *  request) cell granularity, so extra workers help even on a
     *  one-shape sweep with many requests. numWorkers == 1 runs
     *  inline on the calling thread without spawning anything. */
    int numWorkers = 0;
    /**
     * Upper bound on live sessions per shape (a session is
     * single-threaded, so one is checked out of the shape's pool per
     * in-flight cell). <= 0 means "as many as there are workers".
     * The bound trades memory for giant-rung parallelism: sessions
     * are lazily built on first checkout and cached across run()
     * calls, and a worker that finds the pool empty at the bound
     * blocks until a peer checks one back in.
     */
    int maxSessionsPerShape = 0;
    /**
     * Legacy scheduler: claim whole shapes instead of grid cells (one
     * worker per shape, exactly the pre-cell-granular dispatch). Kept
     * because the bit-identity suite proves cell-granular == serial
     * == shape-granular; useless otherwise — a skewed ladder leaves
     * workers idle behind its longest rung.
     */
    bool shapeGranularDispatch = false;
    /**
     * Multi-process sharding: when shardEnd > shardBegin, this run
     * only executes grid cells in [shardBegin, shardEnd) of the
     * shape-major grid (cell = shape * numRequests + request; bounds
     * are clamped to the grid). The journal then carries a
     * shard-range record naming the grid dimensions and this range,
     * a sharded journal never resumes an unsharded sweep (or a
     * different shard) and vice versa, and `complete` refers to the
     * shard's cells only. Merge the per-shard journals with
     * mergeSweepJournals / `syscomm-cli sweep-merge`.
     */
    std::size_t shardBegin = 0;
    std::size_t shardEnd = 0;
    /**
     * Crash-resume journal file; "" disables journaling. When the
     * file already holds a matching sweep (same program shape,
     * shapes, requests), run() resumes it; otherwise the file is
     * restarted. Only stats-only rows (Collect::kNone) are journaled
     * — rows that materialize result vectors are recomputed on
     * resume, which is equally bit-identical, just not incremental.
     */
    std::string journalPath;
    /**
     * With a journal: pause in-flight runs every this many cycles
     * and checkpoint their machine state, so a kill loses at most
     * checkpointEvery cycles of the longest run. 0 = journal only
     * whole rows.
     */
    Cycle checkpointEvery = 0;
    /**
     * Stop cleanly after this many journal records have been written
     * by this run() call (0 = unlimited): the crash-injection knob
     * the kill-and-resume tests use, also handy for bounding
     * incremental nightly work. The returned result is then partial
     * (complete == false); rerunning resumes from the journal.
     */
    std::size_t stopAfterJournalRecords = 0;
    /**
     * External stop request — the drain knob a long-running service
     * pulls on SIGTERM. When non-null and set, workers claim no
     * further rows, and a journaled in-flight run stops at its next
     * pause point *after* its checkpoint record is appended, so the
     * sweep parks in a resumable state within ~checkpointEvery cycles
     * of the request. The returned result is partial (complete ==
     * false); rerunning with the same journal resumes bit-identically.
     * Non-journaled rows (Collect vectors, observers) finish their
     * current run before honoring the flag — they have no checkpoint
     * to park in. The flag must outlive run().
     */
    const std::atomic<bool>* stopFlag = nullptr;
    /**
     * Opt-in version tag folded into the journal's config digest.
     *
     * LOUD CAVEAT — the digest's one blind spot is *code*: a
     * program's compute callbacks are lambdas and cannot be hashed,
     * so a sweep whose op bodies changed (same cells, same messages,
     * same op kinds, different arithmetic) looks IDENTICAL to the
     * journal and would happily replay stale rows from a previous
     * build. If your program carries compute callbacks whose
     * behavior can change between invocations, bump this string
     * (e.g. "fir-v2") whenever they do — any change restarts the
     * journal instead of resuming it. Programs made only of
     * transfer ops (W/R) are fully covered by the structural digest
     * and can leave this "".
     */
    std::string programVersion;
    /**
     * The IO layer every journal byte goes through. nullptr = the
     * real filesystem (serve::Io::system()); tests inject a
     * serve::FaultyIo to kill or fail any individual write/rename and
     * check the recovery. Must outlive run().
     */
    serve::Io* io = nullptr;
    /**
     * fsync the journal after every appended record. Off by default:
     * the v3 CRC framing makes torn tails detectable and the rows
     * behind them recomputable, so fsync buys power-loss durability,
     * not correctness.
     */
    bool fsyncEveryRecord = false;
};

/** One (shape, request) cell of the sweep grid. */
struct ShapeSweepRow
{
    std::size_t shape = 0;
    std::size_t request = 0;
    RunResult result;
    /** SimSession::machineDigest() at the run's terminal state. */
    std::uint64_t machineDigest = 0;
    /** Replayed from the resume journal instead of executed. */
    bool fromJournal = false;
    /** False only when a stopped/partial sweep never ran this row. */
    bool finished = false;
};

/** Everything a shape sweep produced. */
struct ShapeSweepResult
{
    /** Shape-major grid: rows[shape * numRequests + request]. */
    std::vector<ShapeSweepRow> rows;
    std::size_t numShapes = 0;
    std::size_t numRequests = 0;
    /** The requests the grid ran (for per-shape summaries). */
    std::vector<RunRequest> requests;

    /** False when stopAfterJournalRecords stopped the sweep early.
     *  For a sharded run this covers the shard's cells only. */
    bool complete = true;
    /** Echo of ShapeSweepOptions::shardBegin/shardEnd (clamped).
     *  sharded == false means the whole grid ran here. */
    bool sharded = false;
    std::size_t shardBegin = 0;
    std::size_t shardEnd = 0;
    int workersUsed = 1;
    double wallSeconds = 0.0;
    std::size_t rowsFromJournal = 0;
    std::size_t checkpointsRestored = 0;
    /**
     * True when the journal could not be opened or an append failed
     * (EIO, ENOSPC, torn write). The sweep's *results* are unaffected
     * — journaling degrades to off and rows recompute on the next
     * resume — but a service should surface this (the daemon's
     * degraded-mode flag keys off it). journalErrorText carries the
     * first failure's description.
     */
    bool journalError = false;
    std::string journalErrorText;

    const ShapeSweepRow&
    row(std::size_t shape, std::size_t request) const
    {
        return rows[shape * numRequests + request];
    }

    /** SweepSummary over one shape's finished rows. */
    SweepSummary shapeSummary(std::size_t shape) const;

    /** Multi-line human-readable dump (one line per shape). */
    std::string str(const std::vector<ShapeSpec>& shapes) const;
};

/**
 * Progress parsed out of a crash-resume journal without rebuilding
 * the sweep: what a service needs to report about a drained or killed
 * sweep — how many rows finished, and for each in-flight checkpointed
 * row the checkpoint's progress header (cycle reached, kernel,
 * machine digest, per-message stream positions) via
 * peekCheckpointInfo. No sessions are opened and no machine pools are
 * parsed.
 */
struct SweepJournalRow
{
    std::size_t shape = 0;
    std::size_t request = 0;
    /** Header of the row's latest machine checkpoint. */
    CheckpointInfo info;
};

struct SweepJournalInfo
{
    /** The header's config digest (identifies the exact sweep). */
    std::uint64_t configDigest = 0;
    /** Rows finished and replayable verbatim on resume. */
    std::size_t rowsDone = 0;
    /** Unfinished rows with a restorable checkpoint, latest per row,
     *  ordered by (shape, request). */
    std::vector<SweepJournalRow> inflight;
    /** Shard-range record, when the journal carries one: the grid
     *  dimensions and the half-open cell range this shard owns. */
    bool sharded = false;
    std::size_t numShapes = 0;
    std::size_t numRequests = 0;
    std::size_t shardBegin = 0;
    std::size_t shardEnd = 0;
};

/**
 * Parse @p path as a ShapeSweep journal. Returns false when the file
 * is missing, too short, or not a journal of the current version. A
 * torn or corrupt record stops the scan — everything sound before it
 * is still counted, exactly mirroring what a resume would replay.
 */
bool inspectSweepJournal(const std::string& path, SweepJournalInfo& out);

/** One finished row recovered from a set of shard journals. */
struct SweepMergeRow
{
    std::size_t shape = 0;
    std::size_t request = 0;
    std::uint64_t machineDigest = 0;
    RunResult result;
    /** Journals that carried this row (> 1 for overlapping shards —
     *  every duplicate was digest-checked against the first). */
    int sources = 1;
};

/** The union of N shard journals of one sweep. */
struct SweepMergeResult
{
    std::uint64_t configDigest = 0;
    /** Grid dimensions from the shard-range records; 0 when every
     *  input was an unsharded journal (dimensions unrecorded). */
    std::size_t numShapes = 0;
    std::size_t numRequests = 0;
    /** Finished rows in grid order — (shape, request) ascending. */
    std::vector<SweepMergeRow> rows;
    /** Rows seen in more than one journal (each one cross-checked). */
    std::size_t duplicateRows = 0;
    /** True when the dimensions are known and every grid cell has a
     *  row — the merged sweep is whole. */
    bool complete = false;
    /**
     * Per-rung digest fold (FNV over the shape's row digests in
     * request order, finished rows only): one integer per shape that
     * equals the same fold over an unsharded run's rows iff the
     * sharded sweep is bit-identical to it — the cross-check
     * `syscomm-cli sweep-merge` prints. Sized numShapes when the
     * dimensions are known, else by the highest shape seen + 1.
     */
    std::vector<std::uint64_t> shapeDigests;
};

/**
 * Merge N shard journals (any mix of sharded and unsharded, any
 * order) into one summary. Hard failures — returns false with @p
 * error set, out invalid: an unreadable or non-journal file, a
 * config-digest disagreement (the journals describe different
 * sweeps), shard-range records that disagree on grid dimensions, or
 * two journals carrying the same (shape, request) with a different
 * machine digest or result (a determinism violation, never silently
 * dropped). In-flight checkpoints are ignored — merging summarizes
 * finished rows; resume each shard with its own journal to finish it.
 */
bool mergeSweepJournals(const std::vector<std::string>& paths,
                        SweepMergeResult& out, std::string& error);

/**
 * The sweep driver. Construct once per (program, topology, ladder);
 * run() any number of request batches — the shared CompiledProgram
 * and the per-shape sessions are built on first use and cached, and
 * the worker threads persist across batches. The program must
 * outlive the sweep; the topology is shared (every per-shape spec
 * aliases one graph). run() is not reentrant.
 */
class ShapeSweep
{
  public:
    ShapeSweep(const Program& program, SharedTopology topo,
               std::vector<ShapeSpec> shapes,
               ShapeSweepOptions options = {});

    /**
     * Build over compile analyses something else already paid for —
     * the serving daemon's compiled-program cache hands one
     * CompiledProgram to every submission of the same program, and
     * its sweeps must not recompile per submission. @p compiled must
     * be non-null; the Program it references must outlive the sweep.
     * SessionOptions::labels / precomputeLabels in @p options are
     * ignored (the shared object owns those choices).
     */
    ShapeSweep(std::shared_ptr<const CompiledProgram> compiled,
               std::vector<ShapeSpec> shapes,
               ShapeSweepOptions options = {});

    ~ShapeSweep();

    ShapeSweep(const ShapeSweep&) = delete;
    ShapeSweep& operator=(const ShapeSweep&) = delete;

    /** Run every request on every shape. */
    ShapeSweepResult run(const std::vector<RunRequest>& requests);

    /** The shared compile analyses (built on first run()). */
    const std::shared_ptr<const CompiledProgram>& compiled() const
    {
        return compiled_;
    }
    const std::vector<ShapeSpec>& shapes() const { return shapes_; }
    /** The full MachineSpec a shape index resolves to. */
    const MachineSpec& spec(std::size_t shape) const
    {
        return specs_[shape];
    }
    int pooledWorkers() const { return pool_.pooledWorkers(); }

  private:
    struct Journal;
    struct ShapePool;

    const Program& program_;
    /** One shared graph: every per-shape spec and the compiled
     *  program alias this node instead of holding copies. */
    SharedTopology topo_;
    std::vector<ShapeSpec> shapes_;
    ShapeSweepOptions options_;
    /** One MachineSpec per shape; stable addresses (built once). */
    std::vector<MachineSpec> specs_;
    std::shared_ptr<const CompiledProgram> compiled_;
    /** One session pool per shape: sessions are lazily built on
     *  first checkout (bounded by maxSessionsPerShape) and cached
     *  across run() calls. */
    std::vector<std::unique_ptr<ShapePool>> pools_;
    WorkerPool pool_;
};

} // namespace syscomm::sim
