#pragma once

/**
 * @file
 * Minimal byte-stream (de)serialization for simulation checkpoints.
 *
 * The crash-resume path (SimSession::saveCheckpoint, ShapeSweep's
 * journal, the daemon spool) moves machine state — arena pools, queue
 * scalars, cell runtimes, accumulated statistics — through a flat
 * byte buffer that is written to disk and read back by a later
 * invocation, possibly on a different host. Since format v3 the wire
 * encoding is **fixed little-endian and value-based**: every scalar
 * is converted to its unsigned bit pattern and emitted low byte
 * first, independent of the host's native byte order. A v3 stream
 * written on any host reads back identically on any other host of
 * the same type widths (the widths are all explicit: the codecs
 * refuse non-scalar types at compile time, and doubles travel as
 * their IEEE-754 bit pattern in a uint64).
 *
 * ByteReader never reads past the end: every get() checks remaining
 * bytes and latches ok() = false on underrun, after which all reads
 * return zero values. Callers check ok() once at the end instead of
 * wrapping every field.
 *
 * setByteSwappedWriterSimulation() is a test-only hook that routes
 * every scalar through an alternate encode path modelling a
 * byte-swapped (big-endian) host end-to-end: the value's simulated
 * foreign native image is materialized and then converted to wire
 * order the way such a host would. Output bytes are identical by
 * construction — which is exactly the property the portable-format
 * tests assert.
 */

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace syscomm::sim {

namespace serial_detail {

template <std::size_t N>
struct UintBytes;
template <>
struct UintBytes<1> {
    using type = std::uint8_t;
};
template <>
struct UintBytes<2> {
    using type = std::uint16_t;
};
template <>
struct UintBytes<4> {
    using type = std::uint32_t;
};
template <>
struct UintBytes<8> {
    using type = std::uint64_t;
};

template <typename T>
inline constexpr bool kIsSerialScalar =
    std::is_arithmetic_v<T> || std::is_enum_v<T>;

/** Test-only global: pretend the writer runs on a byte-swapped host. */
inline bool&
byteSwappedWriterFlag()
{
    static bool flag = false;
    return flag;
}

/** The value's bit pattern as an unsigned integer of the same width. */
template <typename T>
typename UintBytes<sizeof(T)>::type
bitsOf(const T& value)
{
    using U = typename UintBytes<sizeof(T)>::type;
    if constexpr (std::is_same_v<T, bool>)
        return value ? U{1} : U{0};
    else {
        U u = 0;
        std::memcpy(&u, &value, sizeof(T));
        return u;
    }
}

template <typename T>
T
fromBits(typename UintBytes<sizeof(T)>::type u)
{
    if constexpr (std::is_same_v<T, bool>)
        return u != 0;
    else {
        T value{};
        std::memcpy(&value, &u, sizeof(T));
        return value;
    }
}

} // namespace serial_detail

/**
 * Test-only: route every scalar encode through the simulated
 * byte-swapped-host path. The portable-format tests flip this on,
 * rewrite a journal, and assert the bytes are identical — proof the
 * wire order is defined by value, not by host representation.
 */
inline void
setByteSwappedWriterSimulation(bool on)
{
    serial_detail::byteSwappedWriterFlag() = on;
}

inline bool
byteSwappedWriterSimulation()
{
    return serial_detail::byteSwappedWriterFlag();
}

/** Appends scalar values to a growing byte buffer, little-endian. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

    template <typename T>
    void
    put(const T& value)
    {
        static_assert(serial_detail::kIsSerialScalar<T>,
                      "ByteWriter::put needs a scalar type; serialize "
                      "structs field by field");
        const auto u = serial_detail::bitsOf(value);
        std::uint8_t wire[sizeof(u)];
        for (std::size_t i = 0; i < sizeof(u); ++i)
            wire[i] = static_cast<std::uint8_t>(u >> (8 * i));
        if (serial_detail::byteSwappedWriterFlag()) {
            // Simulated foreign host: materialize its (byte-swapped)
            // native image, then emit it reversed — the conversion a
            // big-endian writer performs. Identity by construction.
            std::uint8_t native[sizeof(u)];
            for (std::size_t i = 0; i < sizeof(u); ++i)
                native[i] = wire[sizeof(u) - 1 - i];
            for (std::size_t i = sizeof(u); i > 0; --i)
                out_.push_back(native[i - 1]);
        } else {
            out_.insert(out_.end(), wire, wire + sizeof(u));
        }
    }

    /** Length-prefixed vector of scalar elements. */
    template <typename T>
    void
    putVector(const std::vector<T>& values)
    {
        static_assert(serial_detail::kIsSerialScalar<T>,
                      "putVector needs scalar elements; serialize "
                      "struct pools field by field");
        put(static_cast<std::uint64_t>(values.size()));
        if constexpr (sizeof(T) == 1) {
            const auto* bytes =
                reinterpret_cast<const std::uint8_t*>(values.data());
            out_.insert(out_.end(), bytes, bytes + values.size());
        } else {
            for (const T& v : values)
                put(v);
        }
    }

    void
    putString(const std::string& s)
    {
        put(static_cast<std::uint64_t>(s.size()));
        out_.insert(out_.end(), s.begin(), s.end());
    }

    std::size_t size() const { return out_.size(); }

  private:
    std::vector<std::uint8_t>& out_;
};

/** Reads values back; latches ok() = false on any underrun. */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size)
    {}

    bool ok() const { return ok_; }
    std::size_t remaining() const { return size_ - at_; }

    template <typename T>
    T
    get()
    {
        static_assert(serial_detail::kIsSerialScalar<T>,
                      "ByteReader::get needs a scalar type; serialize "
                      "structs field by field");
        using U = typename serial_detail::UintBytes<sizeof(T)>::type;
        if (!take(sizeof(T)))
            return T{};
        const std::uint8_t* wire = data_ + at_ - sizeof(T);
        U u = 0;
        for (std::size_t i = 0; i < sizeof(T); ++i)
            u = static_cast<U>(u | (static_cast<U>(wire[i]) << (8 * i)));
        return serial_detail::fromBits<T>(u);
    }

    template <typename T>
    bool
    getVector(std::vector<T>& out)
    {
        static_assert(serial_detail::kIsSerialScalar<T>,
                      "getVector needs scalar elements");
        const auto n = get<std::uint64_t>();
        if (!ok_ || n > remaining() / sizeof(T)) {
            ok_ = false;
            return false;
        }
        out.resize(static_cast<std::size_t>(n));
        if constexpr (sizeof(T) == 1) {
            if (n > 0) {
                std::memcpy(out.data(), data_ + at_,
                            static_cast<std::size_t>(n));
                at_ += static_cast<std::size_t>(n);
            }
        } else {
            for (std::size_t i = 0; i < n; ++i)
                out[i] = get<T>();
        }
        return ok_;
    }

    /**
     * Read a length-prefixed vector into an *existing* buffer of the
     * same size (arena pools must never resize — every kernel span
     * points into them). Fails without touching @p out on mismatch.
     */
    template <typename T>
    bool
    getVectorExact(std::vector<T>& out)
    {
        static_assert(serial_detail::kIsSerialScalar<T>,
                      "getVectorExact needs scalar elements");
        const auto n = get<std::uint64_t>();
        if (!ok_ || n != out.size() ||
            remaining() < static_cast<std::size_t>(n) * sizeof(T)) {
            ok_ = false;
            return false;
        }
        for (std::size_t i = 0; i < n; ++i)
            out[i] = get<T>();
        return ok_;
    }

    bool
    getString(std::string& out)
    {
        const auto n = get<std::uint64_t>();
        if (!ok_ || !take(static_cast<std::size_t>(n)))
            return false;
        out.assign(reinterpret_cast<const char*>(data_ + at_ -
                                                 static_cast<std::size_t>(n)),
                   static_cast<std::size_t>(n));
        return true;
    }

  private:
    bool
    take(std::size_t n)
    {
        if (!ok_ || n > remaining()) {
            ok_ = false;
            return false;
        }
        at_ += n;
        return true;
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t at_ = 0;
    bool ok_ = true;
};

} // namespace syscomm::sim
