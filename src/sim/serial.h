#pragma once

/**
 * @file
 * Minimal byte-stream (de)serialization for simulation checkpoints.
 *
 * The crash-resume path (SimSession::saveCheckpoint, ShapeSweep's
 * journal) needs to move machine state — arena pools, queue scalars,
 * cell runtimes, accumulated statistics — through a flat byte buffer
 * that can be written to disk and read back on another invocation of
 * the same binary. The format is deliberately dumb: native-endian
 * little records with explicit lengths, no schema evolution. A
 * checkpoint is only ever consumed by a session built over the same
 * program and machine spec (SimSession verifies a machine digest on
 * restore), so portability across builds is a non-goal; detecting
 * torn or mismatched input without invoking UB is the whole contract.
 *
 * ByteReader never reads past the end: every get() checks remaining
 * bytes and latches ok() = false on underrun, after which all reads
 * return zero values. Callers check ok() once at the end instead of
 * wrapping every field.
 */

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace syscomm::sim {

/** Appends trivially-copyable values to a growing byte buffer. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

    template <typename T>
    void
    put(const T& value)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "ByteWriter::put needs a trivially copyable type");
        const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
        out_.insert(out_.end(), bytes, bytes + sizeof(T));
    }

    /** Length-prefixed vector of trivially-copyable elements. */
    template <typename T>
    void
    putVector(const std::vector<T>& values)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "putVector needs trivially copyable elements");
        put(static_cast<std::uint64_t>(values.size()));
        if (!values.empty()) {
            const auto* bytes =
                reinterpret_cast<const std::uint8_t*>(values.data());
            out_.insert(out_.end(), bytes,
                        bytes + values.size() * sizeof(T));
        }
    }

    void
    putString(const std::string& s)
    {
        put(static_cast<std::uint64_t>(s.size()));
        out_.insert(out_.end(), s.begin(), s.end());
    }

    std::size_t size() const { return out_.size(); }

  private:
    std::vector<std::uint8_t>& out_;
};

/** Reads values back; latches ok() = false on any underrun. */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size)
    {}

    bool ok() const { return ok_; }
    std::size_t remaining() const { return size_ - at_; }

    template <typename T>
    T
    get()
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "ByteReader::get needs a trivially copyable type");
        T value{};
        if (!take(sizeof(T)))
            return value;
        std::memcpy(&value, data_ + at_ - sizeof(T), sizeof(T));
        return value;
    }

    template <typename T>
    bool
    getVector(std::vector<T>& out)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "getVector needs trivially copyable elements");
        const auto n = get<std::uint64_t>();
        if (!ok_ || n > remaining() / sizeof(T)) {
            ok_ = false;
            return false;
        }
        out.resize(static_cast<std::size_t>(n));
        if (n > 0) {
            std::memcpy(out.data(), data_ + at_,
                        static_cast<std::size_t>(n) * sizeof(T));
            at_ += static_cast<std::size_t>(n) * sizeof(T);
        }
        return true;
    }

    /**
     * Read a length-prefixed vector into an *existing* buffer of the
     * same size (arena pools must never resize — every kernel span
     * points into them). Fails without touching @p out on mismatch.
     */
    template <typename T>
    bool
    getVectorExact(std::vector<T>& out)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "getVectorExact needs trivially copyable elements");
        const auto n = get<std::uint64_t>();
        if (!ok_ || n != out.size() ||
            !take(static_cast<std::size_t>(n) * sizeof(T)))
            return false;
        if (n > 0) {
            std::memcpy(out.data(),
                        data_ + at_ -
                            static_cast<std::size_t>(n) * sizeof(T),
                        static_cast<std::size_t>(n) * sizeof(T));
        }
        return true;
    }

    bool
    getString(std::string& out)
    {
        const auto n = get<std::uint64_t>();
        if (!ok_ || !take(static_cast<std::size_t>(n)))
            return false;
        out.assign(reinterpret_cast<const char*>(data_ + at_ -
                                                 static_cast<std::size_t>(n)),
                   static_cast<std::size_t>(n));
        return true;
    }

  private:
    bool
    take(std::size_t n)
    {
        if (!ok_ || n > remaining()) {
            ok_ = false;
            return false;
        }
        at_ += n;
        return true;
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t at_ = 0;
    bool ok_ = true;
};

} // namespace syscomm::sim
