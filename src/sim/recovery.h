#pragma once

/**
 * @file
 * Checkpoint-based fault recovery: graceful degradation for runs the
 * fault injector (sim/fault.h) kills mid-flight.
 *
 * The paper's machine never breaks; real arrays do, and a long run on
 * one should survive losing a link. RecoveryDriver runs a program
 * under an injected FaultPlan, checkpointing periodically (the same
 * SimSession::saveCheckpoint machinery ShapeSweep's crash-resume
 * journal uses). When the run freezes with faults implicated
 * (RunStatus::kFaulted), the driver:
 *
 *  1. adopts the progress of the last checkpoint — the per-message
 *     delivered-word counts from its header (peekCheckpointInfo);
 *     everything after the checkpoint is considered lost, as it would
 *     be in a crash;
 *  2. rebuilds a degraded Topology excluding every killed link and
 *     cell (Topology::custom tolerates the disconnected remnants);
 *  3. derives the *residual program*: for each unfinished message,
 *     the words not yet delivered at the checkpoint, between the
 *     original endpoints — refusing honestly when an endpoint is dead
 *     or no route survives;
 *  4. runs the residual through repairProgram (core/repair.h), so the
 *     resumed schedule is deadlock-free by construction on the
 *     degraded machine;
 *  5. recompiles (CompiledProgram) for the degraded topology, carries
 *     surviving queue-capacity degradations over as a cycle-0
 *     recovery FaultPlan, and reruns with the original policy/seed.
 *
 * Delivery semantics are at-least-once from the checkpoint: words
 * delivered between the checkpoint and the fault are delivered again
 * by the recovery run. What is preserved is the transfer structure —
 * every message's remaining words arrive, in order, over surviving
 * routes — not payload values (recovery applies to transfer-only
 * programs; compute ops cannot be replayed from a progress header and
 * are refused in step 3).
 *
 * Everything is deterministic: same program, spec, plan, policy and
 * seed give the same primary run, the same checkpoints, the same
 * degraded machine and the same recovery result, so survivability
 * experiments (bench/bench_fault_sweep.cpp) are exactly reproducible.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/machine_spec.h"
#include "core/program.h"
#include "sim/fault.h"
#include "sim/session.h"

namespace syscomm::sim {

/** Knobs for one run-with-recovery. */
struct RecoveryOptions
{
    /** Policy/seed/budget used for both the primary and the recovery
     *  run. collect is forced to kNone (checkpoints require it) and
     *  labels must be empty (the degraded machine computes its own
     *  section 6 labeling — the original labels do not fit the
     *  residual program). pauseAt is driven by the checkpointer. */
    RunRequest request;
    /** The injected schedule the primary run suffers. May be null or
     *  empty (then recovery never triggers). Must outlive the call. */
    const FaultPlan* faults = nullptr;
    /** Checkpoint the primary run every this many cycles; 0 disables
     *  checkpointing (recovery then restarts from scratch). */
    Cycle checkpointEvery = 64;
    /** Kernel / memory model for both runs. */
    SessionOptions session;
};

/** What one RecoveryDriver::run produced. */
struct RecoveryReport
{
    /** The primary (fault-injected) run's terminal result. */
    RunResult primary;
    /** Primary ended RunStatus::kFaulted (else nothing below ran). */
    bool faulted = false;
    /** A residual workload + surviving route existed for every
     *  unfinished message. False with `error` explaining the loss
     *  (dead endpoint, partitioned route, compute ops). */
    bool recoverable = false;
    /** The recovery run completed every residual message. */
    bool recovered = false;
    /** Why recovery was refused or failed ("" when recovered). */
    std::string error;

    /** Pause cycle of the adopted checkpoint, -1 = none existed
     *  (recovery restarted the whole workload). */
    Cycle checkpointCycle = -1;
    /** Unfinished messages / words the recovery run re-delivers. */
    int residualMessages = 0;
    int residualWords = 0;
    /** Hardware lost to the plan's kill events. */
    int deadLinks = 0;
    int deadCells = 0;
    /** Queue-capacity clamps carried into the recovery machine. */
    int carriedDegrades = 0;
    /** Ops repairProgram moved to make the residual deadlock-free. */
    int repairMovedOps = 0;

    /** The recovery run's terminal result (valid when recoverable). */
    RunResult recovery;
    /** SimSession::machineDigest() of the recovery machine at its
     *  terminal state: the one-integer determinism handle sweeps
     *  compare across hosts and kernels. */
    std::uint64_t recoveryMachineDigest = 0;

    /** The degraded machine and residual workload the recovery ran
     *  on — owned here so the report is self-contained (the recovery
     *  FaultPlan carries the surviving degrades). */
    Topology degradedTopo;
    Program residualProgram{1};
    FaultPlan recoveryPlan;

    /** Did the pipeline end with every remaining word delivered? */
    bool completedWorkload() const { return !faulted || recovered; }
};

/**
 * The pipeline driver. Construct per (program, spec); run() executes
 * one inject-checkpoint-recover cycle and is safe to call repeatedly
 * (each call builds fresh sessions). The program and spec must
 * outlive the driver.
 */
class RecoveryDriver
{
  public:
    RecoveryDriver(const Program& program, const MachineSpec& spec);

    RecoveryReport run(const RecoveryOptions& options);

  private:
    const Program& program_;
    const MachineSpec& spec_;
};

} // namespace syscomm::sim
