#pragma once

/**
 * @file
 * The array simulator: cells executing their programs over hardware
 * queues managed by an assignment policy. This is the run-time
 * substrate the paper assumes (a programmable systolic array in the
 * Warp/iWarp family), reduced to the semantics the deadlock machinery
 * depends on:
 *
 *  - one program op per cell per cycle; R/W block until possible,
 *  - words advance one hop per cycle via transparent I/O processes,
 *  - queues are assigned/released per message, direction set at
 *    assignment, released after the last word passes,
 *  - optional memory-to-memory mode (Fig. 1 baseline) charges each
 *    cell-level R and W two local memory accesses.
 *
 * The engine itself lives behind SimSession (sim/session.h), which
 * compiles a program once and runs it many times. This header keeps
 * the original single-use API as a thin wrapper for callers that
 * simulate a program exactly once.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "core/machine_spec.h"
#include "core/program.h"
#include "sim/session.h"

namespace syscomm::sim {

/**
 * Knobs for one single-use simulation run (legacy API). New code
 * should prefer SessionOptions + RunRequest, which split these into
 * session-scoped and per-run halves and make result collection
 * opt-in; this struct maps onto them with every Collect flag set, so
 * its behavior is unchanged from the original simulator.
 */
struct SimOptions
{
    PolicyKind policy = PolicyKind::kCompatible;
    KernelKind kernel = KernelKind::kEventDriven;
    /**
     * Labels per MessageId for the compatible policy and the audit.
     * Left empty, the simulator computes them with the section 6
     * scheme (trivial fallback).
     */
    std::vector<std::int64_t> labels;
    Cycle maxCycles = 1'000'000;
    std::uint64_t seed = 1;
    /** Audit the assignment trace against the labels after the run. */
    bool audit = false;
    /** Memory-to-memory communication model (Fig. 1 baseline). */
    bool memoryToMemory = false;
    /** Cycles per local memory access in memory-to-memory mode. */
    int memAccessCost = 1;
};

/** Session-scoped half of a SimOptions (kernel, labels, memory model). */
SessionOptions sessionOptionsFrom(const SimOptions& options);

/** Per-run half of a SimOptions; collects everything, as the
 *  single-use simulator always did. */
RunRequest runRequestFrom(const SimOptions& options);

/**
 * A single-use simulator instance (legacy API): a SimSession that is
 * only ever run once. The program and spec must outlive the
 * simulator.
 */
class ArraySimulator
{
  public:
    ArraySimulator(const Program& program, const MachineSpec& spec,
                   SimOptions options = {});
    ~ArraySimulator();

    ArraySimulator(const ArraySimulator&) = delete;
    ArraySimulator& operator=(const ArraySimulator&) = delete;

    /** Run to completion/deadlock/budget. Call once. */
    RunResult run();

  private:
    SimOptions options_;
    SimSession session_;
};

/** One-shot convenience wrapper. */
RunResult simulateProgram(const Program& program, const MachineSpec& spec,
                          const SimOptions& options = {});

} // namespace syscomm::sim
