#pragma once

/**
 * @file
 * The array simulator: cells executing their programs over hardware
 * queues managed by an assignment policy. This is the run-time
 * substrate the paper assumes (a programmable systolic array in the
 * Warp/iWarp family), reduced to the semantics the deadlock machinery
 * depends on:
 *
 *  - one program op per cell per cycle; R/W block until possible,
 *  - words advance one hop per cycle via transparent I/O processes,
 *  - queues are assigned/released per message, direction set at
 *    assignment, released after the last word passes,
 *  - optional memory-to-memory mode (Fig. 1 baseline) charges each
 *    cell-level R and W two local memory accesses.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/competing.h"
#include "core/machine_spec.h"
#include "core/program.h"
#include "sim/assignment.h"
#include "sim/audit.h"
#include "sim/cell_exec.h"
#include "sim/deadlock.h"
#include "sim/link_state.h"
#include "sim/stats.h"

namespace syscomm::sim {

/** Terminal state of a run. */
enum class RunStatus : std::uint8_t
{
    kCompleted = 0, ///< Every cell finished its program.
    kDeadlocked,    ///< Zero-progress cycle with unfinished work.
    kMaxCycles,     ///< Cycle budget exhausted (treat as a bug).
    kConfigError,   ///< Invalid program or impossible policy setup.
};

const char* runStatusName(RunStatus status);

/**
 * Which per-cycle engine drives the run.
 *
 * Both kernels implement the identical machine semantics and produce
 * bit-identical RunResults (status, cycle counts, stats, event logs);
 * tests/test_kernel_equivalence.cpp enforces this over randomized
 * programs.
 */
enum class KernelKind : std::uint8_t
{
    /**
     * Event-driven active-set kernel: per cycle, only runnable cells,
     * links with words in flight, and links with pending queue
     * requests are touched, so a cycle costs O(active work) instead
     * of O(cells + links). Cells blocked on a read wake when their
     * input queue changes; cells blocked on a write wake when a queue
     * is assigned or frees space. Stretches where the whole machine
     * only waits for queue timing (e.g. extension penalties) are
     * fast-forwarded in one step.
     */
    kEventDriven = 0,
    /**
     * Reference kernel: the original dense loop that scans every
     * link, queue, and cell each cycle. Kept as the oracle for the
     * equivalence suite and for A/B benchmarking.
     */
    kReference,
};

const char* kernelKindName(KernelKind kind);

/** Knobs for one simulation run. */
struct SimOptions
{
    PolicyKind policy = PolicyKind::kCompatible;
    KernelKind kernel = KernelKind::kEventDriven;
    /**
     * Labels per MessageId for the compatible policy and the audit.
     * Left empty, the simulator computes them with the section 6
     * scheme (trivial fallback).
     */
    std::vector<std::int64_t> labels;
    Cycle maxCycles = 1'000'000;
    std::uint64_t seed = 1;
    /** Audit the assignment trace against the labels after the run. */
    bool audit = false;
    /** Memory-to-memory communication model (Fig. 1 baseline). */
    bool memoryToMemory = false;
    /** Cycles per local memory access in memory-to-memory mode. */
    int memAccessCost = 1;
};

/** Outcome of one run. */
struct RunResult
{
    RunStatus status = RunStatus::kConfigError;
    Cycle cycles = 0;
    std::string error; ///< set for kConfigError
    SimStats stats;
    DeadlockReport deadlock;
    std::vector<AssignmentEvent> events;
    /** Queue releases (queueId = the queue freed). */
    std::vector<AssignmentEvent> releases;
    AuditReport audit;
    /**
     * Per message: cycle its first word entered the network and cycle
     * its last word was read (-1 when it never happened).
     */
    std::vector<std::pair<Cycle, Cycle>> msgTiming;
    /** Labels actually used (as given or as computed). */
    std::vector<std::int64_t> labelsUsed;
    /** Values received per message, in arrival order. */
    std::vector<std::vector<double>> received;

    bool completed() const { return status == RunStatus::kCompleted; }
    const char* statusStr() const { return runStatusName(status); }
};

/**
 * A single-use simulator instance. The program and spec must outlive
 * the simulator.
 */
class ArraySimulator
{
  public:
    ArraySimulator(const Program& program, const MachineSpec& spec,
                   SimOptions options = {});
    ~ArraySimulator();

    ArraySimulator(const ArraySimulator&) = delete;
    ArraySimulator& operator=(const ArraySimulator&) = delete;

    /** Run to completion/deadlock/budget. Call once. */
    RunResult run();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** One-shot convenience wrapper. */
RunResult simulateProgram(const Program& program, const MachineSpec& spec,
                          const SimOptions& options = {});

} // namespace syscomm::sim
