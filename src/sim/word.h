#pragma once

/**
 * @file
 * A word in flight between cells.
 */

#include "core/types.h"

namespace syscomm::sim {

/** One word of a message travelling through the queue network. */
struct Word
{
    MessageId msg = kInvalidMessage;
    /** Word index within its message (0-based). */
    int seq = 0;
    /** Payload produced by the sender's compute context. */
    double value = 0.0;
    /** Cycle the word entered its current queue. */
    Cycle enqueuedAt = 0;
    /** True if the word ever sat in the queue's memory extension. */
    bool wasExtended = false;
};

} // namespace syscomm::sim
