#pragma once

/**
 * @file
 * Aggregate run statistics collected by the simulator.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace syscomm::sim {

/** Counters accumulated over one simulation run. */
struct SimStats
{
    Cycle cycles = 0;

    /** Words consumed by receivers (end-to-end deliveries). */
    std::int64_t wordsDelivered = 0;
    /** Words moved between queues by I/O forwarding processes. */
    std::int64_t wordsForwarded = 0;
    /** Program operations executed (R, W and compute). */
    std::int64_t opsExecuted = 0;
    std::int64_t computeOps = 0;

    /** Queue-management traffic. */
    std::int64_t assignments = 0;
    std::int64_t releases = 0;
    std::int64_t requests = 0;
    /** Sum over assignments of (assigned cycle - requested cycle). */
    std::int64_t requestWaitCycles = 0;

    /** Cycles cells spent unable to execute their current op. */
    std::int64_t cellBlockedCycles = 0;
    std::vector<Cycle> perCellBlocked;

    /** Memory-to-memory model only (paper, Fig. 1). */
    std::int64_t memAccesses = 0;
    std::int64_t memStallCycles = 0;

    /** Queue utilization. */
    std::int64_t queueBusyCycles = 0;
    std::int64_t queueOccupancySum = 0;
    std::int64_t extendedWords = 0;

    /**
     * Zero every counter for a new run, reusing the perCellBlocked
     * buffer (SimSession's run-many reset path).
     */
    void resetRun(std::size_t num_cells)
    {
        cycles = 0;
        wordsDelivered = 0;
        wordsForwarded = 0;
        opsExecuted = 0;
        computeOps = 0;
        assignments = 0;
        releases = 0;
        requests = 0;
        requestWaitCycles = 0;
        cellBlockedCycles = 0;
        perCellBlocked.assign(num_cells, 0);
        memAccesses = 0;
        memStallCycles = 0;
        queueBusyCycles = 0;
        queueOccupancySum = 0;
        extendedWords = 0;
    }

    double avgQueueOccupancy() const
    {
        return queueBusyCycles ? static_cast<double>(queueOccupancySum) /
                                     static_cast<double>(queueBusyCycles)
                               : 0.0;
    }

    double avgRequestWait() const
    {
        return assignments ? static_cast<double>(requestWaitCycles) /
                                 static_cast<double>(assignments)
                           : 0.0;
    }

    /** Multi-line human-readable dump. */
    std::string summary() const;

    /**
     * Field-by-field equality; the kernel-equivalence suite asserts
     * the event-driven and reference kernels agree on every counter.
     */
    bool operator==(const SimStats& o) const
    {
        return cycles == o.cycles && wordsDelivered == o.wordsDelivered &&
               wordsForwarded == o.wordsForwarded &&
               opsExecuted == o.opsExecuted && computeOps == o.computeOps &&
               assignments == o.assignments && releases == o.releases &&
               requests == o.requests &&
               requestWaitCycles == o.requestWaitCycles &&
               cellBlockedCycles == o.cellBlockedCycles &&
               perCellBlocked == o.perCellBlocked &&
               memAccesses == o.memAccesses &&
               memStallCycles == o.memStallCycles &&
               queueBusyCycles == o.queueBusyCycles &&
               queueOccupancySum == o.queueOccupancySum &&
               extendedWords == o.extendedWords;
    }
    bool operator!=(const SimStats& o) const { return !(*this == o); }
};

} // namespace syscomm::sim
