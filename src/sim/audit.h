#pragma once

/**
 * @file
 * Run-time compatibility audit: checks an assignment trace against
 * the paper's dynamic queue-assignment rules (section 7) with respect
 * to a labeling — condition (iii) of Theorem 1.
 *
 *   Ordered assignment: a message is assigned only after all competing
 *   messages with smaller labels have been assigned.
 *   Simultaneous assignment: same-label competitors get separate
 *   queues at the same instant.
 *
 * The audit is policy-agnostic: run it on an FCFS trace and it reports
 * exactly where FCFS broke the rules.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/competing.h"
#include "core/program.h"
#include "core/types.h"

namespace syscomm::sim {

/** One queue assignment as it happened. */
struct AssignmentEvent
{
    Cycle cycle = 0;
    LinkIndex link = kInvalidLink;
    MessageId msg = kInvalidMessage;
    int queueId = -1;
    LinkDir dir = LinkDir::kForward;

    bool operator==(const AssignmentEvent& o) const
    {
        return cycle == o.cycle && link == o.link && msg == o.msg &&
               queueId == o.queueId && dir == o.dir;
    }
    bool operator!=(const AssignmentEvent& o) const
    {
        return !(*this == o);
    }
};

/** A broken rule. */
struct AuditViolation
{
    LinkIndex link = kInvalidLink;
    MessageId first = kInvalidMessage;  ///< smaller-or-equal-label message
    MessageId second = kInvalidMessage; ///< message assigned out of order
    std::string detail;
};

/** Audit outcome. */
struct AuditReport
{
    bool compatible = true;
    std::vector<AuditViolation> violations;

    std::string str(const Program& program) const;
};

/**
 * Check @p events against the ordered/simultaneous rules for the
 * given labels. Competing sets come from @p competing; only messages
 * crossing the same link in the same direction are compared for the
 * ordering rule, while the simultaneity rule spans the link's shared
 * queue pool (both directions).
 */
AuditReport auditAssignments(const Program& program,
                             const CompetingAnalysis& competing,
                             const std::vector<std::int64_t>& labels,
                             const std::vector<AssignmentEvent>& events);

} // namespace syscomm::sim
