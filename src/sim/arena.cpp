#include "sim/arena.h"

#include <cassert>

#include "sim/fnv.h"

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace syscomm::sim {

namespace {

std::uint32_t
nextPow2(std::uint32_t v)
{
    std::uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/**
 * Ask the kernel for transparent huge pages over a pool's interior.
 * Multi-megabyte pools walked end to end every cycle (the dense-active
 * regime) otherwise spend a measurable share of their cache misses on
 * 4 KiB page walks. Called on freshly reserved, still-untouched
 * storage so the first-touch faults populate huge pages directly;
 * best-effort — a kernel without THP just ignores us.
 */
template <typename T>
void
adviseHugePages(std::vector<T>& pool)
{
#if defined(__linux__) && defined(MADV_HUGEPAGE)
    constexpr std::uintptr_t kHuge = 2u << 20;
    auto addr = reinterpret_cast<std::uintptr_t>(pool.data());
    std::uintptr_t bytes = pool.capacity() * sizeof(T);
    std::uintptr_t start = (addr + kHuge - 1) & ~(kHuge - 1);
    if (addr + bytes <= start + kHuge)
        return; // under one aligned huge page: nothing to gain
    std::uintptr_t len = (addr + bytes - start) & ~(kHuge - 1);
    (void)madvise(reinterpret_cast<void*>(start), len, MADV_HUGEPAGE);
#else
    (void)pool;
#endif
}

} // namespace

void
SimArena::buildPools(int num_links, int queues_per_link, int capacity,
                     int ext_capacity, int ext_penalty,
                     const std::vector<int>& crossings_per_link)
{
    assert(!built() && "SimArena::build is once-only");
    assert(num_links >= 1 && queues_per_link >= 1);
    assert(static_cast<int>(crossings_per_link.size()) == num_links);

    const std::uint32_t ring_size =
        nextPow2(static_cast<std::uint32_t>(capacity));
    const std::uint32_t spill_size =
        ext_capacity > 0 ? nextPow2(static_cast<std::uint32_t>(ext_capacity))
                         : 0;
    const std::size_t words_per_queue = ring_size + spill_size;
    const std::size_t num_queues =
        static_cast<std::size_t>(num_links) *
        static_cast<std::size_t>(queues_per_link);

    std::size_t total_crossings = 0;
    for (int n : crossings_per_link)
        total_crossings += static_cast<std::size_t>(n);

    // Reserve (untouched), advise huge pages, then populate: the
    // first-touch page faults then map the pools onto 2 MiB pages.
    words_.reserve(num_queues * words_per_queue);
    adviseHugePages(words_);
    words_.assign(num_queues * words_per_queue, Word{});
    crossings_.reserve(total_crossings);
    adviseHugePages(crossings_);
    crossings_.assign(total_crossings, Crossing{});
    crossing_index_.assign(total_crossings, {kInvalidMessage, -1});
    queues_.reserve(num_queues);
    adviseHugePages(queues_);
    links_.reserve(static_cast<std::size_t>(num_links));
    adviseHugePages(links_);

    std::size_t word_at = 0;
    std::size_t cross_at = 0;
    for (LinkIndex l = 0; l < num_links; ++l) {
        for (int q = 0; q < queues_per_link; ++q) {
            Word* ring = words_.data() + word_at;
            Word* spill = spill_size > 0 ? ring + ring_size : nullptr;
            queues_.emplace_back(q, l, capacity, ext_capacity, ext_penalty,
                                 ring, ring_size, spill, spill_size);
            word_at += words_per_queue;
        }
        const std::size_t cap =
            static_cast<std::size_t>(crossings_per_link[l]);
        links_.emplace_back(
            l,
            Span<HwQueue>(queues_.data() +
                              static_cast<std::size_t>(l) *
                                  static_cast<std::size_t>(queues_per_link),
                          static_cast<std::size_t>(queues_per_link)),
            Span<Crossing>(crossings_.data() + cross_at, cap),
            Span<std::pair<MessageId, int>>(crossing_index_.data() +
                                                cross_at,
                                            cap));
        cross_at += cap;
    }
}

void
SimArena::build(const MachineSpec& spec, const Program& program,
                const std::vector<int>& crossings_per_link)
{
    buildPools(spec.topo.numLinks(), spec.queuesPerLink,
               spec.queueCapacity, spec.extensionCapacity,
               spec.extensionPenalty, crossings_per_link);
    cells_.reserve(static_cast<std::size_t>(program.numCells()));
    adviseHugePages(cells_);
    for (CellId c = 0; c < program.numCells(); ++c)
        cells_.emplace_back(c, &program.cellOps(c));
}

LinkState&
SimArena::buildSingleLink(int num_queues, int capacity, int ext_capacity,
                          int ext_penalty, int max_crossings)
{
    buildPools(1, num_queues, capacity, ext_capacity, ext_penalty,
               {max_crossings});
    return links_.front();
}

HwQueue&
SimArena::buildSingleQueue(int capacity, int ext_capacity, int ext_penalty)
{
    return buildSingleLink(1, capacity, ext_capacity, ext_penalty, 0)
        .queue(0);
}

void
SimArena::copyMachineStateFrom(const SimArena& other)
{
    assert(words_.size() == other.words_.size() &&
           queues_.size() == other.queues_.size() &&
           crossings_.size() == other.crossings_.size() &&
           cells_.size() == other.cells_.size() &&
           "arenas must be built from the same program and spec");
    // Bulk pool copies first (std::copy into the existing storage —
    // vector assignment could reallocate and would invalidate every
    // span), then the per-object scalar state.
    std::copy(other.words_.begin(), other.words_.end(), words_.begin());
    std::copy(other.crossings_.begin(), other.crossings_.end(),
              crossings_.begin());
    for (std::size_t i = 0; i < queues_.size(); ++i)
        queues_[i].copyStateFrom(other.queues_[i]);
    for (std::size_t i = 0; i < cells_.size(); ++i)
        cells_[i].copyStateFrom(other.cells_[i]);
}

void
SimArena::serializeMachineState(std::vector<std::uint8_t>& out) const
{
    ByteWriter w(out);
    // Pool element counts lead the stream: deserialization into a
    // machine of a different shape must fail loudly, never memcpy.
    w.put(static_cast<std::uint64_t>(words_.size()));
    w.put(static_cast<std::uint64_t>(queues_.size()));
    w.put(static_cast<std::uint64_t>(crossings_.size()));
    w.put(static_cast<std::uint64_t>(cells_.size()));
    // Pools serialize field by field (not struct memcpy) so the wire
    // format is the fixed little-endian v3 layout with no padding —
    // a checkpoint written on any host restores on any other.
    w.put(static_cast<std::uint64_t>(words_.size()));
    for (const Word& word : words_) {
        w.put(word.msg);
        w.put(word.seq);
        w.put(word.value);
        w.put(word.enqueuedAt);
        w.put(word.wasExtended);
    }
    w.put(static_cast<std::uint64_t>(crossings_.size()));
    for (const Crossing& c : crossings_) {
        w.put(c.msg);
        w.put(c.dir);
        w.put(c.hopIndex);
        w.put(c.words);
        w.put(c.finalHop);
        w.put(c.phase);
        w.put(c.queueId);
        w.put(c.requestedAt);
        w.put(c.assignedAt);
    }
    for (const HwQueue& q : queues_)
        q.saveState(w);
    for (const CellRuntime& cell : cells_)
        cell.saveState(w);
}

bool
SimArena::deserializeMachineState(const std::uint8_t* data,
                                  std::size_t size)
{
    ByteReader r(data, size);
    if (r.get<std::uint64_t>() != words_.size() ||
        r.get<std::uint64_t>() != queues_.size() ||
        r.get<std::uint64_t>() != crossings_.size() ||
        r.get<std::uint64_t>() != cells_.size() || !r.ok())
        return false;
    // Exact-size reads into the existing pools: nothing may resize —
    // every LinkState/HwQueue span points into this storage.
    if (r.get<std::uint64_t>() != words_.size() || !r.ok())
        return false;
    for (Word& word : words_) {
        word.msg = r.get<MessageId>();
        word.seq = r.get<int>();
        word.value = r.get<double>();
        word.enqueuedAt = r.get<Cycle>();
        word.wasExtended = r.get<bool>();
    }
    if (r.get<std::uint64_t>() != crossings_.size() || !r.ok())
        return false;
    for (Crossing& c : crossings_) {
        c.msg = r.get<MessageId>();
        c.dir = r.get<LinkDir>();
        c.hopIndex = r.get<int>();
        c.words = r.get<int>();
        c.finalHop = r.get<bool>();
        c.phase = r.get<CrossingPhase>();
        c.queueId = r.get<int>();
        c.requestedAt = r.get<Cycle>();
        c.assignedAt = r.get<Cycle>();
    }
    if (!r.ok())
        return false;
    for (HwQueue& q : queues_) {
        if (!q.loadState(r))
            return false;
    }
    for (CellRuntime& cell : cells_) {
        if (!cell.loadState(r))
            return false;
    }
    return r.ok() && r.remaining() == 0;
}

std::uint64_t
SimArena::machineDigest() const
{
    std::uint64_t h = kFnvOffsetBasis;
    for (const Crossing& c : crossings_) {
        h = fnv(h, static_cast<std::uint64_t>(c.msg));
        h = fnv(h, static_cast<std::uint64_t>(c.phase));
        h = fnv(h, static_cast<std::uint64_t>(c.queueId));
        h = fnv(h, static_cast<std::uint64_t>(c.requestedAt));
        h = fnv(h, static_cast<std::uint64_t>(c.assignedAt));
    }
    for (const HwQueue& q : queues_)
        h = q.digestState(h);
    for (const CellRuntime& cell : cells_)
        h = cell.digestState(h);
    return h;
}

std::size_t
SimArena::bytesReserved() const
{
    return words_.capacity() * sizeof(Word) +
           queues_.capacity() * sizeof(HwQueue) +
           crossings_.capacity() * sizeof(Crossing) +
           crossing_index_.capacity() * sizeof(crossing_index_[0]) +
           links_.capacity() * sizeof(LinkState) +
           cells_.capacity() * sizeof(CellRuntime);
}

} // namespace syscomm::sim
