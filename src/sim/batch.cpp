#include "sim/batch.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>

namespace syscomm::sim {

namespace {

/** Nearest-rank percentile over an ascending vector (non-empty). */
Cycle
percentile(const std::vector<Cycle>& sorted, double p)
{
    std::size_t rank = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(sorted.size()) + 0.999999);
    if (rank < 1)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

} // namespace

SweepSummary
summarizeSweep(std::vector<RunResult> results,
               const std::vector<RunRequest>& requests)
{
    SweepSummary summary;
    summary.results = std::move(results);

    std::vector<Cycle> cycles;
    cycles.reserve(summary.results.size());
    PolicySummary byKind[kNumPolicyKinds];
    bool kindUsed[kNumPolicyKinds] = {};
    double waitSum[kNumPolicyKinds] = {};
    double cycleSum[kNumPolicyKinds] = {};

    for (std::size_t i = 0; i < summary.results.size(); ++i) {
        const RunResult& r = summary.results[i];
        ++summary.statusCounts[static_cast<int>(r.status)];
        if (r.status != RunStatus::kConfigError)
            cycles.push_back(r.cycles);

        int kind = i < requests.size()
                       ? static_cast<int>(requests[i].policy)
                       : static_cast<int>(PolicyKind::kCompatible);
        PolicySummary& ps = byKind[kind];
        kindUsed[kind] = true;
        ps.policy = static_cast<PolicyKind>(kind);
        ++ps.runs;
        switch (r.status) {
          case RunStatus::kCompleted:
            ++ps.completed;
            cycleSum[kind] += static_cast<double>(r.cycles);
            waitSum[kind] += r.stats.avgRequestWait();
            break;
          case RunStatus::kDeadlocked:
            ++ps.deadlocked;
            break;
          case RunStatus::kMaxCycles:
            ++ps.budgetExhausted;
            break;
          case RunStatus::kConfigError:
            ++ps.configErrors;
            break;
          case RunStatus::kPaused:
            ++ps.paused;
            break;
        }
    }

    for (int kind = 0; kind < kNumPolicyKinds; ++kind) {
        if (!kindUsed[kind])
            continue;
        PolicySummary ps = byKind[kind];
        if (ps.completed > 0) {
            ps.meanCycles = cycleSum[kind] / ps.completed;
            ps.meanRequestWait = waitSum[kind] / ps.completed;
        }
        summary.perPolicy.push_back(ps);
    }

    if (!cycles.empty()) {
        std::sort(cycles.begin(), cycles.end());
        summary.minCycles = cycles.front();
        summary.maxCycles = cycles.back();
        summary.p50Cycles = percentile(cycles, 50.0);
        summary.p90Cycles = percentile(cycles, 90.0);
        summary.p99Cycles = percentile(cycles, 99.0);
        double sum = 0.0;
        for (Cycle c : cycles)
            sum += static_cast<double>(c);
        summary.meanCycles = sum / static_cast<double>(cycles.size());
    }
    return summary;
}

std::string
SweepSummary::str() const
{
    std::ostringstream os;
    os << "runs: " << results.size() << " (completed " << completed()
       << ", deadlocked " << deadlocked() << ", max-cycles "
       << statusCounts[static_cast<int>(RunStatus::kMaxCycles)]
       << ", config-error "
       << statusCounts[static_cast<int>(RunStatus::kConfigError)]
       << ") on " << workersUsed << " worker(s) in " << wallSeconds
       << "s\n";
    os << "cycles: min " << minCycles << " p50 " << p50Cycles << " p90 "
       << p90Cycles << " p99 " << p99Cycles << " max " << maxCycles
       << " mean " << meanCycles << "\n";
    for (const PolicySummary& ps : perPolicy) {
        os << "  " << policyKindName(ps.policy) << ": " << ps.runs
           << " runs, " << ps.completed << " completed";
        if (ps.completed > 0) {
            os << " (mean " << ps.meanCycles << " cycles, mean wait "
               << ps.meanRequestWait << ")";
        }
        if (ps.deadlocked > 0)
            os << ", " << ps.deadlocked << " deadlocked";
        if (ps.budgetExhausted > 0)
            os << ", " << ps.budgetExhausted << " max-cycles";
        if (ps.configErrors > 0)
            os << ", " << ps.configErrors << " config-error";
        if (ps.paused > 0)
            os << ", " << ps.paused << " paused";
        os << "\n";
    }
    return os.str();
}

/**
 * The persistent worker pool. Threads are spawned by the first
 * threaded batch and live until the runner is destroyed; run() hands
 * them work by publishing a batch (requests/results pointers plus a
 * shared work-stealing index) under the mutex and bumping batchId.
 * A worker participates when its slot is within the batch's worker
 * count; between batches every worker is parked on workCv, so the
 * calling thread may freely mutate sessions_/shared_ — the mutex
 * hand-off orders those writes before the workers' next reads.
 */
struct SweepRunner::Pool
{
    std::mutex mutex;
    std::condition_variable workCv;
    std::condition_variable doneCv;
    std::vector<std::thread> threads;

    // Guarded by mutex:
    bool stop = false;
    std::uint64_t batchId = 0;
    int participants = 0; ///< pool threads active in current batch
    int finished = 0;
    const std::vector<RunRequest>* requests = nullptr;
    std::vector<RunResult>* results = nullptr;
    std::vector<std::exception_ptr>* errors = nullptr;
    std::atomic<std::size_t>* next = nullptr;
};

SweepRunner::SweepRunner(const Program& program, const MachineSpec& spec,
                         SessionOptions session, SweepOptions options)
    : program_(program),
      spec_(spec),
      session_(std::move(session)),
      options_(options),
      shared_(session_)
{}

SweepRunner::~SweepRunner()
{
    if (!pool_)
        return;
    {
        std::lock_guard<std::mutex> lock(pool_->mutex);
        pool_->stop = true;
    }
    pool_->workCv.notify_all();
    for (std::thread& t : pool_->threads)
        t.join();
}

int
SweepRunner::pooledWorkers() const
{
    return pool_ ? static_cast<int>(pool_->threads.size()) : 0;
}

int
SweepRunner::workersFor(std::size_t num_requests) const
{
    int workers = options_.numWorkers > 0
                      ? options_.numWorkers
                      : static_cast<int>(
                            std::thread::hardware_concurrency());
    if (workers < 1)
        workers = 1;
    if (num_requests < static_cast<std::size_t>(workers))
        workers = static_cast<int>(num_requests);
    return std::max(workers, 1);
}

SweepSummary
SweepRunner::run(const std::vector<RunRequest>& requests)
{
    using Clock = std::chrono::steady_clock;
    auto t0 = Clock::now();

    int workers = workersFor(requests.size());
    std::vector<RunResult> results(requests.size());

    // The lead session (slot 0) lives in the calling thread; its
    // resolved labels are handed to the worker slots so the labeler
    // runs once per runner, not once per worker. Label-free sweeps
    // (unsafe baselines, no audit) skip the labeler entirely — and
    // must not hand workers labels the lead never resolved, or
    // RunResult::labelsUsed would depend on which worker ran a
    // request.
    if (sessions_.empty())
        sessions_.push_back(
            std::make_unique<SimSession>(program_, spec_, shared_));
    SimSession& lead = *sessions_.front();
    if (shared_.labels.empty()) {
        bool needsLabels = session_.precomputeLabels;
        for (const RunRequest& r : requests) {
            if (needsLabels)
                break;
            needsLabels = r.labels.empty() && runNeedsLabels(r);
        }
        if (needsLabels && lead.valid()) {
            shared_.labels = lead.labels();
            // Worker sessions cached from earlier label-free batches
            // were built without these labels and would each re-run
            // the labeler lazily; rebuild them with the shared copy
            // so the labeler stays once-per-runner.
            if (sessions_.size() > 1)
                sessions_.resize(1);
        }
    }

    std::atomic<std::size_t> next{0};
    auto drain = [&](SimSession& session) {
        for (std::size_t i = next.fetch_add(1); i < requests.size();
             i = next.fetch_add(1)) {
            results[i] = session.run(requests[i]);
        }
    };

    if (workers <= 1) {
        drain(lead);
    } else {
        // Size the slot vector up front; each participating worker
        // then only touches its own slot, constructing the session
        // there on first use (parallel construction) and reusing it
        // on later batches. Exceptions (a throwing ComputeFn, OOM)
        // are parked per slot and rethrown after the batch joins, so
        // the threaded path fails the same way the serial path does
        // instead of std::terminate-ing the process.
        if (static_cast<int>(sessions_.size()) < workers)
            sessions_.resize(workers);
        std::vector<std::exception_ptr> workerErrors(workers);

        if (!pool_)
            pool_ = std::make_unique<Pool>();
        // Grow the persistent pool to cover this batch; it never
        // shrinks — an idle parked thread costs nothing, spawning
        // one per run() call cost every small batch a thread
        // start-up (the pre-pool design).
        while (static_cast<int>(pool_->threads.size()) < workers - 1) {
            int slot = static_cast<int>(pool_->threads.size()) + 1;
            pool_->threads.emplace_back([this, slot] {
                std::uint64_t seen = 0;
                for (;;) {
                    const std::vector<RunRequest>* reqs;
                    std::vector<RunResult>* res;
                    std::vector<std::exception_ptr>* errs;
                    std::atomic<std::size_t>* idx;
                    {
                        std::unique_lock<std::mutex> lock(pool_->mutex);
                        pool_->workCv.wait(lock, [&] {
                            return pool_->stop ||
                                   (pool_->batchId != seen &&
                                    slot <= pool_->participants);
                        });
                        if (pool_->stop)
                            return;
                        seen = pool_->batchId;
                        reqs = pool_->requests;
                        res = pool_->results;
                        errs = pool_->errors;
                        idx = pool_->next;
                    }
                    try {
                        if (!sessions_[slot]) {
                            sessions_[slot] = std::make_unique<SimSession>(
                                program_, spec_, shared_);
                        }
                        for (std::size_t i = idx->fetch_add(1);
                             i < reqs->size(); i = idx->fetch_add(1)) {
                            (*res)[i] = sessions_[slot]->run((*reqs)[i]);
                        }
                    } catch (...) {
                        (*errs)[slot] = std::current_exception();
                    }
                    {
                        std::lock_guard<std::mutex> lock(pool_->mutex);
                        if (++pool_->finished == pool_->participants)
                            pool_->doneCv.notify_all();
                    }
                }
            });
        }

        // Publish the batch and wake the participating workers.
        {
            std::lock_guard<std::mutex> lock(pool_->mutex);
            ++pool_->batchId;
            pool_->participants = workers - 1;
            pool_->finished = 0;
            pool_->requests = &requests;
            pool_->results = &results;
            pool_->errors = &workerErrors;
            pool_->next = &next;
        }
        pool_->workCv.notify_all();

        try {
            drain(lead);
        } catch (...) {
            workerErrors[0] = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(pool_->mutex);
            pool_->doneCv.wait(lock, [&] {
                return pool_->finished == pool_->participants;
            });
            // The batch-local pointers die with this frame; no
            // parked worker reads them again (a worker only reads
            // them after observing a *new* batchId).
            pool_->requests = nullptr;
            pool_->results = nullptr;
            pool_->errors = nullptr;
            pool_->next = nullptr;
        }
        for (const std::exception_ptr& error : workerErrors) {
            if (error)
                std::rethrow_exception(error);
        }
    }

    SweepSummary summary = summarizeSweep(std::move(results), requests);
    summary.workersUsed = workers;
    summary.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return summary;
}

} // namespace syscomm::sim
