#include "sim/batch.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

namespace syscomm::sim {

namespace {

/** Nearest-rank percentile over an ascending vector (non-empty). */
Cycle
percentile(const std::vector<Cycle>& sorted, double p)
{
    std::size_t rank = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(sorted.size()) + 0.999999);
    if (rank < 1)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

} // namespace

SweepSummary
summarizeSweep(std::vector<RunResult> results,
               const std::vector<RunRequest>& requests)
{
    SweepSummary summary;
    summary.results = std::move(results);

    std::vector<Cycle> cycles;
    cycles.reserve(summary.results.size());
    PolicySummary byKind[kNumPolicyKinds];
    bool kindUsed[kNumPolicyKinds] = {};
    double waitSum[kNumPolicyKinds] = {};
    double cycleSum[kNumPolicyKinds] = {};

    for (std::size_t i = 0; i < summary.results.size(); ++i) {
        const RunResult& r = summary.results[i];
        ++summary.statusCounts[static_cast<int>(r.status)];
        if (r.status != RunStatus::kConfigError)
            cycles.push_back(r.cycles);

        int kind = i < requests.size()
                       ? static_cast<int>(requests[i].policy)
                       : static_cast<int>(PolicyKind::kCompatible);
        PolicySummary& ps = byKind[kind];
        kindUsed[kind] = true;
        ps.policy = static_cast<PolicyKind>(kind);
        ++ps.runs;
        switch (r.status) {
          case RunStatus::kCompleted:
            ++ps.completed;
            cycleSum[kind] += static_cast<double>(r.cycles);
            waitSum[kind] += r.stats.avgRequestWait();
            break;
          case RunStatus::kDeadlocked:
            ++ps.deadlocked;
            break;
          case RunStatus::kMaxCycles:
            ++ps.budgetExhausted;
            break;
          case RunStatus::kConfigError:
            ++ps.configErrors;
            break;
        }
    }

    for (int kind = 0; kind < kNumPolicyKinds; ++kind) {
        if (!kindUsed[kind])
            continue;
        PolicySummary ps = byKind[kind];
        if (ps.completed > 0) {
            ps.meanCycles = cycleSum[kind] / ps.completed;
            ps.meanRequestWait = waitSum[kind] / ps.completed;
        }
        summary.perPolicy.push_back(ps);
    }

    if (!cycles.empty()) {
        std::sort(cycles.begin(), cycles.end());
        summary.minCycles = cycles.front();
        summary.maxCycles = cycles.back();
        summary.p50Cycles = percentile(cycles, 50.0);
        summary.p90Cycles = percentile(cycles, 90.0);
        summary.p99Cycles = percentile(cycles, 99.0);
        double sum = 0.0;
        for (Cycle c : cycles)
            sum += static_cast<double>(c);
        summary.meanCycles = sum / static_cast<double>(cycles.size());
    }
    return summary;
}

std::string
SweepSummary::str() const
{
    std::ostringstream os;
    os << "runs: " << results.size() << " (completed " << completed()
       << ", deadlocked " << deadlocked() << ", max-cycles "
       << statusCounts[static_cast<int>(RunStatus::kMaxCycles)]
       << ", config-error "
       << statusCounts[static_cast<int>(RunStatus::kConfigError)]
       << ") on " << workersUsed << " worker(s) in " << wallSeconds
       << "s\n";
    os << "cycles: min " << minCycles << " p50 " << p50Cycles << " p90 "
       << p90Cycles << " p99 " << p99Cycles << " max " << maxCycles
       << " mean " << meanCycles << "\n";
    for (const PolicySummary& ps : perPolicy) {
        os << "  " << policyKindName(ps.policy) << ": " << ps.runs
           << " runs, " << ps.completed << " completed";
        if (ps.completed > 0) {
            os << " (mean " << ps.meanCycles << " cycles, mean wait "
               << ps.meanRequestWait << ")";
        }
        if (ps.deadlocked > 0)
            os << ", " << ps.deadlocked << " deadlocked";
        if (ps.budgetExhausted > 0)
            os << ", " << ps.budgetExhausted << " max-cycles";
        if (ps.configErrors > 0)
            os << ", " << ps.configErrors << " config-error";
        os << "\n";
    }
    return os.str();
}

SweepRunner::SweepRunner(const Program& program, const MachineSpec& spec,
                         SessionOptions session, SweepOptions options)
    : program_(program),
      spec_(spec),
      session_(std::move(session)),
      options_(options),
      shared_(session_)
{}

SweepRunner::~SweepRunner() = default;

int
SweepRunner::workersFor(std::size_t num_requests) const
{
    int workers = options_.numWorkers > 0
                      ? options_.numWorkers
                      : static_cast<int>(
                            std::thread::hardware_concurrency());
    if (workers < 1)
        workers = 1;
    if (num_requests < static_cast<std::size_t>(workers))
        workers = static_cast<int>(num_requests);
    return std::max(workers, 1);
}

SweepSummary
SweepRunner::run(const std::vector<RunRequest>& requests)
{
    using Clock = std::chrono::steady_clock;
    auto t0 = Clock::now();

    int workers = workersFor(requests.size());
    std::vector<RunResult> results(requests.size());

    // The lead session (slot 0) lives in the calling thread; its
    // resolved labels are handed to the worker slots so the labeler
    // runs once per runner, not once per worker. Label-free sweeps
    // (unsafe baselines, no audit) skip the labeler entirely — and
    // must not hand workers labels the lead never resolved, or
    // RunResult::labelsUsed would depend on which worker ran a
    // request.
    if (sessions_.empty())
        sessions_.push_back(
            std::make_unique<SimSession>(program_, spec_, shared_));
    SimSession& lead = *sessions_.front();
    if (shared_.labels.empty()) {
        bool needsLabels = session_.precomputeLabels;
        for (const RunRequest& r : requests) {
            if (needsLabels)
                break;
            needsLabels = r.labels.empty() && runNeedsLabels(r);
        }
        if (needsLabels && lead.valid()) {
            shared_.labels = lead.labels();
            // Worker sessions cached from earlier label-free batches
            // were built without these labels and would each re-run
            // the labeler lazily; rebuild them with the shared copy
            // so the labeler stays once-per-runner.
            if (sessions_.size() > 1)
                sessions_.resize(1);
        }
    }

    std::atomic<std::size_t> next{0};
    auto drain = [&](SimSession& session) {
        for (std::size_t i = next.fetch_add(1); i < requests.size();
             i = next.fetch_add(1)) {
            results[i] = session.run(requests[i]);
        }
    };

    if (workers <= 1) {
        drain(lead);
    } else {
        // Size the slot vector up front; each spawned thread then
        // only touches its own slot, constructing the session there
        // on first use (parallel construction) and reusing it on
        // later batches. Exceptions (a throwing ComputeFn, OOM) are
        // parked per worker and rethrown after the join, so the
        // threaded path fails the same way the serial path does
        // instead of std::terminate-ing the process.
        if (static_cast<int>(sessions_.size()) < workers)
            sessions_.resize(workers);
        std::vector<std::exception_ptr> workerErrors(workers);
        std::vector<std::thread> pool;
        pool.reserve(workers - 1);
        for (int w = 1; w < workers; ++w) {
            pool.emplace_back([&, w] {
                try {
                    if (!sessions_[w]) {
                        sessions_[w] = std::make_unique<SimSession>(
                            program_, spec_, shared_);
                    }
                    drain(*sessions_[w]);
                } catch (...) {
                    workerErrors[w] = std::current_exception();
                }
            });
        }
        try {
            drain(lead);
        } catch (...) {
            workerErrors[0] = std::current_exception();
        }
        for (std::thread& t : pool)
            t.join();
        for (const std::exception_ptr& error : workerErrors) {
            if (error)
                std::rethrow_exception(error);
        }
    }

    SweepSummary summary = summarizeSweep(std::move(results), requests);
    summary.workersUsed = workers;
    summary.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return summary;
}

} // namespace syscomm::sim
