#include "sim/batch.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>

namespace syscomm::sim {

namespace {

/**
 * Nearest-rank percentile over an ascending vector. An empty vector
 * has no order statistics: -1, the same "no distribution" marker
 * SweepSummary uses (indexing into it would be UB, and 0 is a legal
 * cycle count).
 */
Cycle
percentile(const std::vector<Cycle>& sorted, double p)
{
    if (sorted.empty())
        return -1;
    std::size_t rank = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(sorted.size()) + 0.999999);
    if (rank < 1)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

} // namespace

SweepSummary
summarizeSweep(std::vector<RunResult> results,
               const std::vector<RunRequest>& requests)
{
    SweepSummary summary;
    summary.results = std::move(results);

    std::vector<Cycle> cycles;
    cycles.reserve(summary.results.size());
    PolicySummary byKind[kNumPolicyKinds];
    bool kindUsed[kNumPolicyKinds] = {};
    double waitSum[kNumPolicyKinds] = {};
    double cycleSum[kNumPolicyKinds] = {};

    for (std::size_t i = 0; i < summary.results.size(); ++i) {
        const RunResult& r = summary.results[i];
        ++summary.statusCounts[static_cast<int>(r.status)];
        if (r.status != RunStatus::kConfigError)
            cycles.push_back(r.cycles);

        int kind = i < requests.size()
                       ? static_cast<int>(requests[i].policy)
                       : static_cast<int>(PolicyKind::kCompatible);
        PolicySummary& ps = byKind[kind];
        kindUsed[kind] = true;
        ps.policy = static_cast<PolicyKind>(kind);
        ++ps.runs;
        switch (r.status) {
          case RunStatus::kCompleted:
            ++ps.completed;
            cycleSum[kind] += static_cast<double>(r.cycles);
            waitSum[kind] += r.stats.avgRequestWait();
            break;
          case RunStatus::kDeadlocked:
            ++ps.deadlocked;
            break;
          case RunStatus::kMaxCycles:
            ++ps.budgetExhausted;
            break;
          case RunStatus::kConfigError:
            ++ps.configErrors;
            break;
          case RunStatus::kPaused:
            ++ps.paused;
            break;
          case RunStatus::kFaulted:
            ++ps.faulted;
            break;
        }
    }

    for (int kind = 0; kind < kNumPolicyKinds; ++kind) {
        if (!kindUsed[kind])
            continue;
        PolicySummary ps = byKind[kind];
        if (ps.completed > 0) {
            ps.meanCycles = cycleSum[kind] / ps.completed;
            ps.meanRequestWait = waitSum[kind] / ps.completed;
        }
        summary.perPolicy.push_back(ps);
    }

    // An all-config-error (or empty) batch has no cycle distribution;
    // the summary keeps its -1 "absent" markers rather than computing
    // percentiles of nothing.
    if (!cycles.empty()) {
        std::sort(cycles.begin(), cycles.end());
        summary.minCycles = cycles.front();
        summary.maxCycles = cycles.back();
        summary.p50Cycles = percentile(cycles, 50.0);
        summary.p90Cycles = percentile(cycles, 90.0);
        summary.p99Cycles = percentile(cycles, 99.0);
        double sum = 0.0;
        for (Cycle c : cycles)
            sum += static_cast<double>(c);
        summary.meanCycles = sum / static_cast<double>(cycles.size());
    }
    return summary;
}

std::string
SweepSummary::str() const
{
    std::ostringstream os;
    // Every status bucket prints, by name, from the same table the
    // simulator maintains — a RunStatus added later (as kPaused was)
    // can never silently vanish from sweep reports again.
    os << "runs: " << results.size() << " (";
    for (int s = 0; s < kNumRunStatuses; ++s) {
        if (s > 0)
            os << ", ";
        os << runStatusName(static_cast<RunStatus>(s)) << " "
           << statusCounts[s];
    }
    os << ") on " << workersUsed << " worker(s) in " << wallSeconds
       << "s\n";
    os << "cycles: min " << minCycles << " p50 " << p50Cycles << " p90 "
       << p90Cycles << " p99 " << p99Cycles << " max " << maxCycles
       << " mean " << meanCycles << "\n";
    for (const PolicySummary& ps : perPolicy) {
        os << "  " << policyKindName(ps.policy) << ": " << ps.runs
           << " runs, " << ps.completed << " completed";
        if (ps.completed > 0) {
            os << " (mean " << ps.meanCycles << " cycles, mean wait "
               << ps.meanRequestWait << ")";
        }
        if (ps.deadlocked > 0)
            os << ", " << ps.deadlocked << " deadlocked";
        if (ps.budgetExhausted > 0)
            os << ", " << ps.budgetExhausted << " max-cycles";
        if (ps.configErrors > 0)
            os << ", " << ps.configErrors << " config-error";
        if (ps.paused > 0)
            os << ", " << ps.paused << " paused";
        if (ps.faulted > 0)
            os << ", " << ps.faulted << " faulted";
        os << "\n";
    }
    return os.str();
}

/**
 * Shared pool state. Threads are spawned by the first dispatch that
 * needs them and live until the pool is destroyed; dispatch() hands
 * them work by publishing a batch (the job plus a shared
 * work-stealing index) under the mutex and bumping batchId. A worker
 * participates when its slot is within the batch's worker count;
 * between batches every worker is parked on workCv, so the calling
 * thread may freely mutate per-slot state — the mutex hand-off orders
 * those writes before the workers' next reads.
 */
struct WorkerPool::State
{
    std::mutex mutex;
    std::condition_variable workCv;
    std::condition_variable doneCv;
    std::vector<std::thread> threads;

    // Guarded by mutex:
    bool stop = false;
    std::uint64_t batchId = 0;
    int participants = 0; ///< pool threads active in current batch
    int finished = 0;
    std::size_t count = 0;
    const std::function<void(int, std::size_t)>* job = nullptr;
    std::vector<std::exception_ptr>* errors = nullptr;
    std::atomic<std::size_t>* next = nullptr;
};

WorkerPool::WorkerPool() : state_(std::make_unique<State>()) {}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(state_->mutex);
        state_->stop = true;
    }
    state_->workCv.notify_all();
    for (std::thread& t : state_->threads)
        t.join();
}

int
WorkerPool::pooledWorkers() const
{
    return static_cast<int>(state_->threads.size());
}

void
WorkerPool::dispatch(int workers, std::size_t count,
                     const std::function<void(int, std::size_t)>& job)
{
    if (workers < 1)
        workers = 1;

    std::atomic<std::size_t> next{0};
    auto drain = [&](int slot) {
        for (std::size_t i = next.fetch_add(1); i < count;
             i = next.fetch_add(1)) {
            job(slot, i);
        }
    };

    if (workers == 1) {
        drain(0); // inline: a single-worker batch spawns nothing
        return;
    }

    // Exceptions (a throwing ComputeFn, OOM) are parked per slot and
    // rethrown after the batch joins, so the threaded path fails the
    // same way the serial path does instead of std::terminate-ing
    // the process.
    std::vector<std::exception_ptr> slotErrors(workers);

    // Grow the pool to cover this batch; it never shrinks — an idle
    // parked thread costs nothing, while spawning per dispatch cost
    // every small batch a thread start-up (the pre-pool design).
    while (static_cast<int>(state_->threads.size()) < workers - 1) {
        int slot = static_cast<int>(state_->threads.size()) + 1;
        state_->threads.emplace_back([this, slot] {
            std::uint64_t seen = 0;
            for (;;) {
                const std::function<void(int, std::size_t)>* batchJob;
                std::vector<std::exception_ptr>* errs;
                std::atomic<std::size_t>* idx;
                std::size_t n;
                {
                    std::unique_lock<std::mutex> lock(state_->mutex);
                    state_->workCv.wait(lock, [&] {
                        return state_->stop ||
                               (state_->batchId != seen &&
                                slot <= state_->participants);
                    });
                    if (state_->stop)
                        return;
                    seen = state_->batchId;
                    batchJob = state_->job;
                    errs = state_->errors;
                    idx = state_->next;
                    n = state_->count;
                }
                try {
                    for (std::size_t i = idx->fetch_add(1); i < n;
                         i = idx->fetch_add(1)) {
                        (*batchJob)(slot, i);
                    }
                } catch (...) {
                    (*errs)[slot] = std::current_exception();
                }
                {
                    std::lock_guard<std::mutex> lock(state_->mutex);
                    if (++state_->finished == state_->participants)
                        state_->doneCv.notify_all();
                }
            }
        });
    }

    // Publish the batch and wake the participating workers.
    {
        std::lock_guard<std::mutex> lock(state_->mutex);
        ++state_->batchId;
        state_->participants = workers - 1;
        state_->finished = 0;
        state_->count = count;
        state_->job = &job;
        state_->errors = &slotErrors;
        state_->next = &next;
    }
    state_->workCv.notify_all();

    try {
        drain(0);
    } catch (...) {
        slotErrors[0] = std::current_exception();
    }
    {
        std::unique_lock<std::mutex> lock(state_->mutex);
        state_->doneCv.wait(lock, [&] {
            return state_->finished == state_->participants;
        });
        // The batch-local pointers die with this frame; no parked
        // worker reads them again (a worker only reads them after
        // observing a *new* batchId).
        state_->job = nullptr;
        state_->errors = nullptr;
        state_->next = nullptr;
        state_->count = 0;
    }
    for (const std::exception_ptr& error : slotErrors) {
        if (error)
            std::rethrow_exception(error);
    }
}

SweepRunner::SweepRunner(const Program& program, const MachineSpec& spec,
                         SessionOptions session, SweepOptions options)
    : program_(program),
      spec_(spec),
      session_(std::move(session)),
      options_(options)
{}

SweepRunner::~SweepRunner() = default;

int
SweepRunner::pooledWorkers() const
{
    return pool_.pooledWorkers();
}

int
clampWorkers(int requested, std::size_t work_items)
{
    int workers = requested > 0
                      ? requested
                      : static_cast<int>(
                            std::thread::hardware_concurrency());
    if (workers < 1)
        workers = 1;
    if (work_items < static_cast<std::size_t>(workers))
        workers = static_cast<int>(work_items);
    return std::max(workers, 1);
}

int
SweepRunner::workersFor(std::size_t num_requests) const
{
    return clampWorkers(options_.numWorkers, num_requests);
}

SweepSummary
SweepRunner::run(const std::vector<RunRequest>& requests)
{
    using Clock = std::chrono::steady_clock;
    auto t0 = Clock::now();

    int workers = workersFor(requests.size());
    std::vector<RunResult> results(requests.size());

    // Compile once per runner; every slot's session shares the result.
    // The lazy default labeling inside it is once-flag guarded, so the
    // first request that needs labels resolves them exactly once no
    // matter which worker it lands on — and every slot's
    // RunResult::labelsUsed reads the same vector, so results cannot
    // depend on which worker ran a request.
    if (!compiled_)
        compiled_ = CompiledProgram::compile(program_, spec_.topo,
                                             session_.labels,
                                             session_.precomputeLabels);
    // Size the slot vector up front; each participating slot then
    // only touches its own entry, constructing its session there on
    // first use (in parallel, for pool slots) and reusing it on later
    // batches.
    if (static_cast<int>(sessions_.size()) < workers)
        sessions_.resize(workers);

    auto job = [&](int slot, std::size_t i) {
        if (!sessions_[slot]) {
            sessions_[slot] =
                std::make_unique<SimSession>(compiled_, spec_, session_);
        }
        results[i] = sessions_[slot]->run(requests[i]);
    };
    pool_.dispatch(workers, requests.size(), job);

    SweepSummary summary = summarizeSweep(std::move(results), requests);
    summary.workersUsed = workers;
    summary.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return summary;
}

} // namespace syscomm::sim
