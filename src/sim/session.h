#pragma once

/**
 * @file
 * The reusable simulation entry point: compile once, run many.
 *
 * A SimSession binds a Program to a MachineSpec and performs all the
 * per-program work up front — validation, competing-message analysis,
 * route registration, label computation, and the allocation of every
 * link, queue, cell and kernel-side buffer. The machine hot state
 * (links, queues and their ring storage, crossings, per-cell
 * runtimes) lives in one session-owned SimArena (sim/arena.h) of
 * contiguous pools rather than per-object heap allocations. Each
 * run(RunRequest) then resets that state in place instead of
 * reallocating it, so sweeps over seeds, policies and cycle budgets
 * pay the compile cost once.
 *
 * Result materialization is opt-in: a RunRequest carries a Collect
 * bitmask, and by default a run produces only its status, cycle count
 * and SimStats counters. The heavy RunResult vectors (assignment
 * events, releases, per-message timing, received values) and the
 * compatibility audit are filled only when asked for; a RunObserver
 * can stream assignment/release/delivery events instead of
 * materializing them.
 *
 * The legacy single-use API (ArraySimulator, simulateProgram) in
 * sim/machine.h is a thin wrapper over this class.
 */

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/analyze.h"
#include "core/competing.h"
#include "core/machine_spec.h"
#include "core/program.h"
#include "sim/assignment.h"
#include "sim/audit.h"
#include "sim/deadlock.h"
#include "sim/fault.h"
#include "sim/serial.h"
#include "sim/stats.h"

namespace syscomm::sim {

/**
 * The program-side compile analyses a SimSession runs over: program
 * validation, the competing-message analysis (routes), the default
 * labeling, and the route-derived registration tables (crossings per
 * link, first/last-hop endpoints, routed links, program-bearing
 * cells). None of it depends on the machine's queue resources — only
 * on the Program and the Topology — so a sweep over machine *shapes*
 * (queue count / capacity / buffering ladders, the paper's central
 * experiments) can compile once and hand the same CompiledProgram to
 * every per-shape session instead of re-running the analyses per
 * shape. ShapeSweep (sim/shape_sweep.h) is built on exactly that.
 *
 * Thread-safety: a CompiledProgram is immutable after construction
 * except for the lazily computed default labeling, which is guarded
 * by a once-flag — concurrent sessions on different threads may share
 * one instance freely (SweepRunner's workers do).
 *
 * The Program must outlive the CompiledProgram; the Topology travels
 * as a SharedTopology, so compiling against a MachineSpec's topo (or
 * handing one compiled program to a shape ladder) shares one graph
 * instead of copying it per holder.
 */
class CompiledProgram
{
  public:
    /**
     * Run the analyses. @p labels, when non-empty, becomes the
     * default labeling verbatim; otherwise @p precompute_labels picks
     * between computing the section 6 labeling now or on first use.
     */
    CompiledProgram(const Program& program, SharedTopology topo,
                    std::vector<std::int64_t> labels = {},
                    bool precompute_labels = true);

    /** Convenience: compile into a shareable handle. */
    static std::shared_ptr<const CompiledProgram>
    compile(const Program& program, SharedTopology topo,
            std::vector<std::int64_t> labels = {},
            bool precompute_labels = true);

    const Program& program() const { return program_; }
    const Topology& topo() const { return topo_; }
    /** The shared topology node (alias it, don't copy it). */
    const SharedTopology& sharedTopo() const { return topo_; }

    /** Did program validation pass? */
    bool valid() const { return validation_.empty(); }
    /** First validation error ("" when valid). */
    const std::string& error() const { return firstError_; }
    /** All validation errors. */
    const std::vector<std::string>& validation() const
    {
        return validation_;
    }

    const CompetingAnalysis& competing() const { return competing_; }

    /**
     * The default labeling (explicit labels, else section 6 with
     * trivial fallback). Computed at most once; safe to call from
     * concurrent sessions.
     */
    const std::vector<std::int64_t>& labels() const;

    /** Route crossings per link (sizes each arena's crossing spans). */
    const std::vector<int>& crossingsPerLink() const
    {
        return crossingsPerLink_;
    }
    /** Links at least one route crosses, descending (forward order). */
    const std::vector<LinkIndex>& routedLinksDesc() const
    {
        return routedLinksDesc_;
    }
    /** Cells with a non-empty program, ascending. */
    const std::vector<CellId>& programCells() const
    {
        return programCells_;
    }
    /** Per message: link of the route's first / last hop. */
    const std::vector<LinkIndex>& firstHopLink() const
    {
        return firstHopLink_;
    }
    const std::vector<LinkIndex>& lastHopLink() const
    {
        return lastHopLink_;
    }
    /** Per message: crossing index on that link (registration order). */
    const std::vector<int>& firstHopCross() const
    {
        return firstHopCross_;
    }
    const std::vector<int>& lastHopCross() const { return lastHopCross_; }

    /**
     * The simlint static analysis (core/analyze.h) of this program at
     * @p spec's queue shape, memoized per distinct shape: the serve
     * CompileCache holds CompiledPrograms keyed by program/topology
     * digest, so N submissions of one program pay for one analysis.
     * Thread-safe; concurrent callers of the same shape share one
     * pass. Only the queue-shape fields of @p spec are consulted (the
     * topology is the compiled one).
     */
    std::shared_ptr<const AnalysisReport>
    analysis(const MachineSpec& spec) const;

    /**
     * Process-wide count of CompiledProgram constructions, i.e. of
     * full program-side analysis passes. Tests assert compile sharing
     * with it: a ShapeSweep over N shapes must advance it by exactly
     * one.
     */
    static std::int64_t buildCount();

  private:
    const Program& program_;
    SharedTopology topo_;
    std::vector<std::string> validation_;
    std::string firstError_;
    CompetingAnalysis competing_;
    std::vector<int> crossingsPerLink_;
    std::vector<LinkIndex> routedLinksDesc_;
    std::vector<CellId> programCells_;
    std::vector<LinkIndex> firstHopLink_;
    std::vector<LinkIndex> lastHopLink_;
    std::vector<int> firstHopCross_;
    std::vector<int> lastHopCross_;

    /** Lazy default labeling; see labels(). */
    mutable std::once_flag labelsOnce_;
    mutable std::vector<std::int64_t> labels_;
    bool labelsGiven_ = false;

    /** Memoized per-shape static analyses; see analysis(). */
    mutable std::mutex analysisMutex_;
    mutable std::vector<std::pair<AnalyzeOptions,
                                  std::shared_ptr<const AnalysisReport>>>
        analysisCache_;
};

/** Terminal state of a run. */
enum class RunStatus : std::uint8_t
{
    kCompleted = 0, ///< Every cell finished its program.
    kDeadlocked,    ///< Zero-progress cycle with unfinished work.
    kMaxCycles,     ///< Cycle budget exhausted (treat as a bug).
    kConfigError,   ///< Invalid program or impossible policy setup.
    /**
     * RunRequest::pauseAt reached: the run stopped mid-flight with
     * full machine state retained. Continue it with
     * SimSession::resume(), or hand the state to another session
     * (possibly running the other kernel) via adoptState() — the
     * mechanism behind the sampled-oracle equivalence harness.
     */
    kPaused,
    /**
     * Zero-progress cycle with unfinished work where injected faults
     * (RunRequest::faults) are implicated in the frozen state: the
     * run did not deadlock on its own, the hardware died under it.
     * RunResult::deadlock carries the snapshot plus fault attribution
     * (DeadlockReport::faults). The recovery pipeline (sim/recovery.h)
     * turns these into degraded-topology reruns.
     */
    kFaulted,
};

inline constexpr int kNumRunStatuses = 6;
static_assert(static_cast<int>(RunStatus::kFaulted) + 1 ==
                  kNumRunStatuses,
              "update kNumRunStatuses when adding a RunStatus — it "
              "sizes arrays indexed by the enum");

const char* runStatusName(RunStatus status);

/**
 * Which per-cycle engine drives the run.
 *
 * Both kernels implement the identical machine semantics and produce
 * bit-identical RunResults (status, cycle counts, stats, event logs);
 * tests/test_kernel_equivalence.cpp enforces this over randomized
 * programs.
 */
enum class KernelKind : std::uint8_t
{
    /**
     * Event-driven active-set kernel: per cycle, only runnable cells,
     * links with words in flight, and links with pending queue
     * requests are touched, so a cycle costs O(active work) instead
     * of O(cells + links). Cells blocked on a read wake when their
     * input queue changes; cells blocked on a write wake when a queue
     * is assigned or frees space. Stretches where the whole machine
     * only waits for queue timing (e.g. extension penalties) are
     * fast-forwarded in one step.
     */
    kEventDriven = 0,
    /**
     * Reference kernel: the original dense loop that scans every
     * link, queue, and cell each cycle. Kept as the oracle for the
     * equivalence suite and for A/B benchmarking.
     */
    kReference,
};

const char* kernelKindName(KernelKind kind);

/**
 * Opt-in result materialization. By default a run fills only status,
 * cycle count, SimStats, the labels used, and (on deadlock) the
 * deadlock snapshot; everything else costs memory proportional to the
 * run and must be requested.
 */
enum class Collect : std::uint8_t
{
    kNone = 0,
    kEvents = 1u << 0,    ///< RunResult::events (one per assignment).
    kReleases = 1u << 1,  ///< RunResult::releases.
    kMsgTiming = 1u << 2, ///< RunResult::msgTiming.
    kReceived = 1u << 3,  ///< RunResult::received (every word value).
    kAudit = 1u << 4,     ///< Run the section 7 compatibility audit.
    kAll = 0x1f,
};

constexpr Collect
operator|(Collect a, Collect b)
{
    return static_cast<Collect>(static_cast<std::uint8_t>(a) |
                                static_cast<std::uint8_t>(b));
}

constexpr Collect
operator&(Collect a, Collect b)
{
    return static_cast<Collect>(static_cast<std::uint8_t>(a) &
                                static_cast<std::uint8_t>(b));
}

inline Collect&
operator|=(Collect& a, Collect b)
{
    a = a | b;
    return a;
}

/** Does @p set include @p flag? */
constexpr bool
collects(Collect set, Collect flag)
{
    return (set & flag) != Collect::kNone;
}

/**
 * Streaming sink for run events: an alternative to materializing the
 * event vectors when a consumer only wants to observe the assignment
 * trace (or tail deliveries) as they happen. Hooks fire regardless of
 * the Collect flags; the default implementations do nothing.
 *
 * The observer is invoked from whichever thread executes the run (a
 * SweepRunner worker, for sweeps), never concurrently for one run.
 * One observer instance attached to several requests of a threaded
 * sweep IS called concurrently — from a different worker per request
 * — and must synchronize its own state.
 */
class RunObserver
{
  public:
    virtual ~RunObserver() = default;

    /** A queue was assigned to a message. */
    virtual void onAssign(const AssignmentEvent& event) { (void)event; }
    /** A queue was released (queueId = the queue freed). */
    virtual void onRelease(const AssignmentEvent& event) { (void)event; }
    /** A receiver consumed word @p seq of @p msg. */
    virtual void
    onDeliver(MessageId msg, int seq, double value, Cycle now)
    {
        (void)msg;
        (void)seq;
        (void)value;
        (void)now;
    }
};

/**
 * Session-scoped configuration: everything that shapes the
 * compiled/allocated machine state shared by every run.
 */
struct SessionOptions
{
    KernelKind kernel = KernelKind::kEventDriven;
    /**
     * Default labels per MessageId for the compatible policies and
     * the audit. Left empty, the session computes them with the
     * section 6 scheme (trivial fallback) — once, not per run.
     */
    std::vector<std::int64_t> labels;
    /**
     * Compute the default labeling at construction. Turn off for
     * sweeps that never need labels (pure FCFS/random baselines); a
     * run that does need them still computes them lazily, once.
     */
    bool precomputeLabels = true;
    /** Memory-to-memory communication model (Fig. 1 baseline). */
    bool memoryToMemory = false;
    /** Cycles per local memory access in memory-to-memory mode. */
    int memAccessCost = 1;
};

/** Per-run knobs: everything that may vary between runs of a session. */
struct RunRequest
{
    PolicyKind policy = PolicyKind::kCompatible;
    std::uint64_t seed = 1;
    Cycle maxCycles = 1'000'000;
    /** What to materialize in the RunResult (default: stats only). */
    Collect collect = Collect::kNone;
    /** Labels override for this run; empty = the session's labels. */
    std::vector<std::int64_t> labels;
    /** Optional streaming sink; must outlive the run. */
    RunObserver* observer = nullptr;
    /**
     * 0 = run to a terminal status. Otherwise pause at the first
     * executed cycle >= pauseAt (termination wins a tie): run()
     * returns a snapshot result with status kPaused — counters,
     * collected vectors and queue statistics settled through the
     * pause cycle exactly as the reference kernel would report them —
     * and the session keeps the mid-run machine state for resume()
     * or another session's adoptState(). Pausing never perturbs the
     * run: resuming to the end produces the bit-identical result an
     * unpaused run would have. Sweeps should leave this 0 — a paused
     * worker result is just a truncated run (the pool reuses the
     * session safely; the paused state dies at its next run()).
     */
    Cycle pauseAt = 0;
    /**
     * Deterministic fault schedule, or nullptr for healthy hardware.
     * Must outlive the run (and any resume/adoptState/
     * restoreCheckpoint chain continuing it — a restore replays the
     * plan's already-due events to rebuild the dead-link/dead-cell
     * state the checkpoint's machine pools do not carry). Both kernels
     * apply the plan identically, so faulted runs stay bit-identical
     * across kernels and pause boundaries. An invalid plan (targets
     * outside the machine) is a kConfigError.
     */
    const FaultPlan* faults = nullptr;
};

/**
 * Does this request need a labeling (compatible policies consume
 * labels; the audit checks against them)? Shared by SimSession's
 * label resolution and SweepRunner's decision to pre-resolve labels
 * for its workers — keep the two in lockstep.
 */
inline bool
runNeedsLabels(const RunRequest& request)
{
    return request.policy == PolicyKind::kCompatible ||
           request.policy == PolicyKind::kCompatibleEager ||
           collects(request.collect, Collect::kAudit);
}

/** Outcome of one run. */
struct RunResult
{
    RunStatus status = RunStatus::kConfigError;
    Cycle cycles = 0;
    std::string error; ///< set for kConfigError
    SimStats stats;
    DeadlockReport deadlock;
    /** Collect::kEvents — queue assignments, in order. */
    std::vector<AssignmentEvent> events;
    /** Collect::kReleases — queue releases (queueId = queue freed). */
    std::vector<AssignmentEvent> releases;
    /** Collect::kAudit. */
    AuditReport audit;
    /**
     * Collect::kMsgTiming — per message: cycle its first word entered
     * the network and cycle its last word was read (-1 when never).
     */
    std::vector<std::pair<Cycle, Cycle>> msgTiming;
    /**
     * Labels the run used (as given or as computed). Empty when the
     * run needed none (label-free policy, no audit, no override) —
     * identical requests always report identical labels, regardless
     * of what earlier runs of the session resolved.
     */
    std::vector<std::int64_t> labelsUsed;
    /** Collect::kReceived — values received per message, in order. */
    std::vector<std::vector<double>> received;

    bool completed() const { return status == RunStatus::kCompleted; }
    const char* statusStr() const { return runStatusName(status); }
};

/**
 * Serialize the stats-level portion of a RunResult — status, cycles,
 * error, SimStats, labels used, and the deadlock report; NOT the
 * opt-in Collect vectors (events, releases, timing, received values)
 * or the audit. A stats-only run (Collect::kNone) round-trips
 * losslessly, which is what ShapeSweep's crash-resume journal relies
 * on to replay finished rows bit-identically.
 */
void saveRunResult(ByteWriter& out, const RunResult& result);

/** Restore saveRunResult() bytes; false on a torn stream. */
bool loadRunResult(ByteReader& in, RunResult& result);

/**
 * The run-progress header of a saveCheckpoint() stream, readable
 * without a session: what a recovery pipeline needs to know about an
 * interrupted run — how far it got (cycles, per-message stream
 * positions) and what it was running (machine digest, fault-plan
 * digest, kernel). The machine pools themselves are not parsed.
 */
struct CheckpointInfo
{
    std::uint64_t machineDigest = 0;
    /** FaultPlan::digest() of the run's plan (0 = no faults). */
    std::uint64_t faultPlanDigest = 0;
    /** Checkpoint written by the event-driven kernel? */
    bool eventKernel = false;
    /** First cycle a resumed run executes. */
    Cycle resumeFrom = 0;
    /** Pause cycle the checkpoint captured. */
    Cycle cycles = 0;
    /** Per message: words the sender has pushed into the network. */
    std::vector<int> writeSeq;
    /** Per message: words the receiver has consumed. writeSeq[m] -
     *  readSeq[m] words were in flight and are LOST if the machine
     *  is rebuilt from this checkpoint's progress alone — recovery
     *  re-sends from readSeq (at-least-once delivery). */
    std::vector<int> readSeq;
};

/** Parse the header of saveCheckpoint() bytes; false if torn or not
 *  a checkpoint stream of the current version. */
bool peekCheckpointInfo(const std::uint8_t* data, std::size_t size,
                        CheckpointInfo& info);

/**
 * A compiled, reusable simulator instance. The program and spec must
 * outlive the session. Not thread-safe: one session serves one thread
 * (SweepRunner gives each worker its own).
 */
class SimSession
{
  public:
    SimSession(const Program& program, const MachineSpec& spec,
               SessionOptions options = {});

    /**
     * Build over shared compile analyses instead of re-running them:
     * the shape-sweep constructor. @p compiled must be non-null and
     * its topology must structurally match @p spec.topo (same cells,
     * same links) — a mismatch makes the session invalid, it never
     * runs on foreign routes. SessionOptions::labels still overrides
     * the compiled default labeling for this session;
     * SessionOptions::precomputeLabels is ignored (the shared object
     * owns that choice).
     */
    SimSession(std::shared_ptr<const CompiledProgram> compiled,
               const MachineSpec& spec, SessionOptions options = {});

    ~SimSession();

    SimSession(const SimSession&) = delete;
    SimSession& operator=(const SimSession&) = delete;
    SimSession(SimSession&&) noexcept;
    SimSession& operator=(SimSession&&) noexcept;

    /**
     * Run to completion/deadlock/budget (or RunRequest::pauseAt),
     * resetting machine state in place first. Call as many times as
     * you like; calling it while paused abandons the paused run.
     */
    RunResult run(const RunRequest& request = {});

    /**
     * Continue a paused run under its original request, to the next
     * pause point (@p pauseAt, 0 = to a terminal status). Paused
     * snapshots and the final result are bit-identical to what a
     * single unpaused run would produce. Returns kConfigError if the
     * session is not paused.
     */
    RunResult resume(Cycle pauseAt = 0);

    /** Is a paused run waiting for resume()? */
    bool paused() const;

    /**
     * Adopt the complete mid-run state of @p other — machine state
     * (queues, crossings, cells), accumulated results and statistics,
     * policy state, and the original run configuration — leaving this
     * session paused at the same cycle, ready to resume(). Both
     * sessions must be built over the same Program and MachineSpec
     * objects with the same memory model; the *kernels may differ*,
     * which is the point: the sampled-oracle harness checkpoints the
     * fast event-driven kernel and replays sampled cycle windows
     * under the dense reference kernel from the same state. Returns
     * false (leaving this session untouched) when @p other is not
     * paused or the sessions are incompatible.
     */
    bool adoptState(const SimSession& other);

    /**
     * FNV digest of the kernel-independent machine state (crossing
     * phases, queue contents and counters, cell runtimes, stream
     * positions). Two sessions that executed the same machine history
     * digest identically regardless of kernel — compare at matching
     * pause cycles for an O(machine) bit-identity check that needs no
     * result materialization.
     */
    std::uint64_t machineDigest() const;

    /**
     * Serialize the paused run — machine pools, run progress and
     * statistics, policy decision state — into @p out for crash
     * resume across process invocations (ShapeSweep's journal is the
     * production consumer). Returns false, appending nothing, unless
     * the session is paused on a stats-only run (RunRequest::collect
     * was kNone; the opt-in result vectors are not serialized).
     * Restore with restoreCheckpoint() on a session built over the
     * same program, topology and machine spec — resuming then yields
     * results bit-identical to the uninterrupted run.
     */
    bool saveCheckpoint(std::vector<std::uint8_t>& out) const;

    /**
     * Rebuild a paused run from saveCheckpoint() bytes, leaving the
     * session paused at the checkpoint cycle ready for resume().
     * @p request must be the interrupted run's original RunRequest
     * (policy, seed, budget, labels; collect must be kNone) — the
     * checkpoint stores machine state, not run configuration. Returns
     * false, abandoning any restored fragments, when the stream is
     * torn, was produced by a differently-shaped machine, or the
     * restored state fails its recorded machine digest.
     */
    bool restoreCheckpoint(const RunRequest& request,
                           const std::uint8_t* data, std::size_t size);
    bool restoreCheckpoint(const RunRequest& request,
                           const std::vector<std::uint8_t>& bytes);

    /** Did construction-time validation pass? */
    bool valid() const;
    /** First validation error ("" when valid). */
    const std::string& error() const;
    /** The compile analyses this session runs over (never null). */
    const std::shared_ptr<const CompiledProgram>& compiled() const;
    /**
     * The session's default labels (computes them on first use if
     * construction skipped them).
     */
    const std::vector<std::int64_t>& labels();
    /** run() calls so far (config-error runs included). */
    int runCount() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace syscomm::sim
