#include "sim/queue.h"

#include <cassert>

namespace syscomm::sim {

namespace {

std::uint32_t
nextPow2(std::uint32_t v)
{
    std::uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

HwQueue::HwQueue(int id, LinkIndex link, int capacity, int ext_capacity,
                 int ext_penalty)
    : id_(id),
      link_(link),
      capacity_(capacity),
      ext_capacity_(ext_capacity),
      ext_penalty_(ext_penalty)
{
    assert(capacity >= 1 && "a queue buffers at least one word");
    assert(ext_capacity >= 0 && ext_penalty >= 0);
    std::uint32_t ring_size = nextPow2(static_cast<std::uint32_t>(capacity));
    ring_.resize(ring_size);
    mask_ = ring_size - 1;
    spill_.reserve(static_cast<std::size_t>(ext_capacity));
}

void
HwQueue::reset()
{
    assigned_ = kInvalidMessage;
    dir_ = LinkDir::kForward;
    final_hop_ = false;
    words_remaining_ = 0;
    head_ = 0;
    ring_count_ = 0;
    spill_.clear(); // keeps the reserved extension capacity
    spill_head_ = 0;
    front_ready_at_ = 0;
    last_push_cycle_ = -1;
    last_pop_cycle_ = -1;
    settled_ = 0;
    busy_cycles_ = 0;
    occupancy_sum_ = 0;
    words_pushed_ = 0;
    extended_words_ = 0;
    assignments_ = 0;
}

void
HwQueue::settleStats(Cycle now)
{
    if (now <= settled_)
        return;
    if (assigned_ != kInvalidMessage) {
        busy_cycles_ += now - settled_;
        occupancy_sum_ += static_cast<std::int64_t>(size()) *
                          (now - settled_);
    }
    settled_ = now;
}

void
HwQueue::assign(MessageId msg, LinkDir dir, int total_words, Cycle now,
                bool final_hop)
{
    assert(isFree() && "queue already assigned");
    assert(total_words > 0);
    settleStats(now);
    assigned_ = msg;
    dir_ = dir;
    final_hop_ = final_hop;
    words_remaining_ = total_words;
    ++assignments_;
}

void
HwQueue::release(Cycle now)
{
    assert(canRelease());
    settleStats(now);
    assigned_ = kInvalidMessage;
    final_hop_ = false;
    words_remaining_ = 0;
}

void
HwQueue::push(Word word, Cycle now)
{
    assert(canPush(now));
    assert(word.msg == assigned_ && "queue carries one message at a time");
    settleStats(now);
    word.enqueuedAt = now;
    // Hardware slots fill first; the overflow goes to the memory
    // extension. FIFO order requires spilling whenever the extension
    // already holds words.
    word.wasExtended = ring_count_ >= capacity_;
    bool was_empty = empty();
    if (word.wasExtended) {
        ++extended_words_;
        spill_.push_back(word);
    } else {
        ring_[(head_ + static_cast<std::uint32_t>(ring_count_)) & mask_] =
            word;
        ++ring_count_;
    }
    last_push_cycle_ = now;
    ++words_pushed_;
    if (was_empty)
        refreshFrontReady(now);
}

bool
HwQueue::canPop(Cycle now) const
{
    if (empty() || last_pop_cycle_ == now)
        return false;
    const Word& w = front();
    return w.enqueuedAt < now && now >= front_ready_at_;
}

bool
HwQueue::pendingTimedEvent(Cycle now) const
{
    if (empty() || canPop(now))
        return false;
    const Word& w = front();
    return w.enqueuedAt >= now || now < front_ready_at_ ||
           last_pop_cycle_ == now;
}

Word
HwQueue::pop(Cycle now)
{
    assert(canPop(now));
    settleStats(now);
    Word word = ring_[head_];
    head_ = (head_ + 1) & mask_;
    --ring_count_;
    last_pop_cycle_ = now;
    --words_remaining_;
    // A spilled word surfaces into the freed hardware slot.
    if (spill_head_ < spill_.size()) {
        ring_[(head_ + static_cast<std::uint32_t>(ring_count_)) & mask_] =
            spill_[spill_head_];
        ++ring_count_;
        ++spill_head_;
        if (spill_head_ == spill_.size()) {
            spill_.clear();
            spill_head_ = 0;
        } else if (spill_head_ >= static_cast<std::size_t>(ext_capacity_)) {
            // Compact the consumed prefix so spill_ stays
            // O(ext_capacity) even when the extension never fully
            // drains during a long stream (amortized O(1) per word).
            spill_.erase(spill_.begin(),
                         spill_.begin() +
                             static_cast<std::ptrdiff_t>(spill_head_));
            spill_head_ = 0;
        }
    }
    if (!empty())
        refreshFrontReady(now);
    return word;
}

void
HwQueue::refreshFrontReady(Cycle now)
{
    // A word that spilled into the memory extension pays the extension
    // access penalty when it surfaces at the front.
    front_ready_at_ = now + (front().wasExtended ? ext_penalty_ : 0);
}

} // namespace syscomm::sim
