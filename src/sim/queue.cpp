#include "sim/queue.h"

#include <cassert>

#include "sim/fnv.h"

namespace syscomm::sim {

namespace {

inline std::uint64_t
fnvWord(std::uint64_t h, const Word& w)
{
    h = fnv(h, static_cast<std::uint64_t>(w.msg));
    h = fnv(h, static_cast<std::uint64_t>(w.seq));
    h = fnvDouble(h, w.value);
    h = fnv(h, static_cast<std::uint64_t>(w.enqueuedAt));
    h = fnv(h, w.wasExtended ? 1 : 0);
    return h;
}

} // namespace

HwQueue::HwQueue(int id, LinkIndex link, int capacity, int ext_capacity,
                 int ext_penalty, Word* ring, std::uint32_t ring_size,
                 Word* spill, std::uint32_t spill_size)
    : id_(id),
      link_(link),
      capacity_(capacity),
      ext_capacity_(ext_capacity),
      ext_penalty_(ext_penalty),
      ring_(ring),
      mask_(ring_size - 1),
      spill_(spill),
      spill_mask_(spill_size == 0 ? 0 : spill_size - 1)
{
    assert(capacity >= 1 && "a queue buffers at least one word");
    assert(ext_capacity >= 0 && ext_penalty >= 0);
    assert(ring != nullptr && (ring_size & mask_) == 0 &&
           static_cast<int>(ring_size) >= capacity &&
           "ring must be a pow2 slice covering the capacity");
    assert((ext_capacity == 0 ||
            (spill != nullptr && (spill_size & spill_mask_) == 0 &&
             static_cast<int>(spill_size) >= ext_capacity)) &&
           "spill must be a pow2 slice covering the extension");
}

void
HwQueue::reset()
{
    assigned_ = kInvalidMessage;
    dir_ = LinkDir::kForward;
    final_hop_ = false;
    words_remaining_ = 0;
    cap_limit_ = 0;
    head_ = 0;
    ring_count_ = 0;
    spill_head_ = 0;
    spill_count_ = 0;
    front_ready_at_ = 0;
    last_push_cycle_ = -1;
    last_pop_cycle_ = -1;
    settled_ = 0;
    busy_cycles_ = 0;
    occupancy_sum_ = 0;
    words_pushed_ = 0;
    extended_words_ = 0;
    assignments_ = 0;
}

void
HwQueue::copyStateFrom(const HwQueue& other)
{
    assert(capacity_ == other.capacity_ &&
           ext_capacity_ == other.ext_capacity_ &&
           ext_penalty_ == other.ext_penalty_ && mask_ == other.mask_ &&
           spill_mask_ == other.spill_mask_ && "queue shapes must match");
    // The ring/spill *contents* travel with the arena's word pool
    // (SimArena::copyMachineStateFrom copies it wholesale before the
    // per-queue scalar pass), so only the scalars move here.
    assigned_ = other.assigned_;
    dir_ = other.dir_;
    final_hop_ = other.final_hop_;
    words_remaining_ = other.words_remaining_;
    cap_limit_ = other.cap_limit_;
    head_ = other.head_;
    ring_count_ = other.ring_count_;
    spill_head_ = other.spill_head_;
    spill_count_ = other.spill_count_;
    front_ready_at_ = other.front_ready_at_;
    last_push_cycle_ = other.last_push_cycle_;
    last_pop_cycle_ = other.last_pop_cycle_;
    settled_ = other.settled_;
    busy_cycles_ = other.busy_cycles_;
    occupancy_sum_ = other.occupancy_sum_;
    words_pushed_ = other.words_pushed_;
    extended_words_ = other.extended_words_;
    assignments_ = other.assignments_;
}

void
HwQueue::saveState(ByteWriter& out) const
{
    out.put(assigned_);
    out.put(dir_);
    out.put(final_hop_);
    out.put(words_remaining_);
    out.put(cap_limit_);
    out.put(head_);
    out.put(ring_count_);
    out.put(spill_head_);
    out.put(spill_count_);
    out.put(front_ready_at_);
    out.put(last_push_cycle_);
    out.put(last_pop_cycle_);
    out.put(settled_);
    out.put(busy_cycles_);
    out.put(occupancy_sum_);
    out.put(words_pushed_);
    out.put(extended_words_);
    out.put(assignments_);
}

bool
HwQueue::loadState(ByteReader& in)
{
    assigned_ = in.get<MessageId>();
    dir_ = in.get<LinkDir>();
    final_hop_ = in.get<bool>();
    words_remaining_ = in.get<int>();
    cap_limit_ = in.get<int>();
    head_ = in.get<std::uint32_t>();
    ring_count_ = in.get<int>();
    spill_head_ = in.get<std::uint32_t>();
    spill_count_ = in.get<int>();
    front_ready_at_ = in.get<Cycle>();
    last_push_cycle_ = in.get<Cycle>();
    last_pop_cycle_ = in.get<Cycle>();
    settled_ = in.get<Cycle>();
    busy_cycles_ = in.get<Cycle>();
    occupancy_sum_ = in.get<std::int64_t>();
    words_pushed_ = in.get<std::int64_t>();
    extended_words_ = in.get<std::int64_t>();
    assignments_ = in.get<std::int64_t>();
    return in.ok();
}

void
HwQueue::settleStats(Cycle now)
{
    if (now <= settled_)
        return;
    if (assigned_ != kInvalidMessage) {
        busy_cycles_ += now - settled_;
        occupancy_sum_ += static_cast<std::int64_t>(size()) *
                          (now - settled_);
    }
    settled_ = now;
}

void
HwQueue::assign(MessageId msg, LinkDir dir, int total_words, Cycle now,
                bool final_hop)
{
    assert(isFree() && "queue already assigned");
    assert(total_words > 0);
    settleStats(now);
    assigned_ = msg;
    dir_ = dir;
    final_hop_ = final_hop;
    words_remaining_ = total_words;
    ++assignments_;
}

void
HwQueue::release(Cycle now)
{
    assert(canRelease());
    settleStats(now);
    assigned_ = kInvalidMessage;
    final_hop_ = false;
    words_remaining_ = 0;
}

void
HwQueue::push(Word word, Cycle now)
{
    assert(canPush(now));
    assert(word.msg == assigned_ && "queue carries one message at a time");
    settleStats(now);
    word.enqueuedAt = now;
    // Hardware slots fill first; the overflow goes to the memory
    // extension. FIFO order requires spilling whenever the extension
    // already holds words.
    word.wasExtended = ring_count_ >= capacity_;
    bool was_empty = empty();
    if (word.wasExtended) {
        ++extended_words_;
        spill_[(spill_head_ + static_cast<std::uint32_t>(spill_count_)) &
               spill_mask_] = word;
        ++spill_count_;
    } else {
        ring_[(head_ + static_cast<std::uint32_t>(ring_count_)) & mask_] =
            word;
        ++ring_count_;
    }
    last_push_cycle_ = now;
    ++words_pushed_;
    if (was_empty)
        refreshFrontReady(now);
}

bool
HwQueue::canPop(Cycle now) const
{
    if (empty() || last_pop_cycle_ == now)
        return false;
    const Word& w = front();
    return w.enqueuedAt < now && now >= front_ready_at_;
}

bool
HwQueue::pendingTimedEvent(Cycle now) const
{
    if (empty() || canPop(now))
        return false;
    const Word& w = front();
    return w.enqueuedAt >= now || now < front_ready_at_ ||
           last_pop_cycle_ == now;
}

Word
HwQueue::pop(Cycle now)
{
    assert(canPop(now));
    settleStats(now);
    Word word = ring_[head_];
    head_ = (head_ + 1) & mask_;
    --ring_count_;
    last_pop_cycle_ = now;
    --words_remaining_;
    // A spilled word surfaces into the freed hardware slot.
    if (spill_count_ > 0) {
        ring_[(head_ + static_cast<std::uint32_t>(ring_count_)) & mask_] =
            spill_[spill_head_];
        ++ring_count_;
        spill_head_ = (spill_head_ + 1) & spill_mask_;
        --spill_count_;
    }
    if (!empty())
        refreshFrontReady(now);
    return word;
}

void
HwQueue::refreshFrontReady(Cycle now)
{
    // A word that spilled into the memory extension pays the extension
    // access penalty when it surfaces at the front.
    front_ready_at_ = now + (front().wasExtended ? ext_penalty_ : 0);
}

std::uint64_t
HwQueue::digestState(std::uint64_t h) const
{
    h = fnv(h, static_cast<std::uint64_t>(assigned_));
    h = fnv(h, static_cast<std::uint64_t>(dir_));
    h = fnv(h, final_hop_ ? 1 : 0);
    h = fnv(h, static_cast<std::uint64_t>(words_remaining_));
    h = fnv(h, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(cap_limit_)));
    h = fnv(h, static_cast<std::uint64_t>(ring_count_));
    h = fnv(h, static_cast<std::uint64_t>(spill_count_));
    for (int i = 0; i < ring_count_; ++i)
        h = fnvWord(h, ring_[(head_ + static_cast<std::uint32_t>(i)) &
                             mask_]);
    for (int i = 0; i < spill_count_; ++i)
        h = fnvWord(h,
                    spill_[(spill_head_ + static_cast<std::uint32_t>(i)) &
                           spill_mask_]);
    h = fnv(h, static_cast<std::uint64_t>(front_ready_at_));
    h = fnv(h, static_cast<std::uint64_t>(last_push_cycle_));
    h = fnv(h, static_cast<std::uint64_t>(last_pop_cycle_));
    h = fnv(h, static_cast<std::uint64_t>(busy_cycles_));
    h = fnv(h, static_cast<std::uint64_t>(occupancy_sum_));
    h = fnv(h, static_cast<std::uint64_t>(words_pushed_));
    h = fnv(h, static_cast<std::uint64_t>(extended_words_));
    h = fnv(h, static_cast<std::uint64_t>(assignments_));
    return h;
}

} // namespace syscomm::sim
