#include "sim/queue.h"

#include <cassert>

namespace syscomm::sim {

HwQueue::HwQueue(int id, LinkIndex link, int capacity, int ext_capacity,
                 int ext_penalty)
    : id_(id),
      link_(link),
      capacity_(capacity),
      ext_capacity_(ext_capacity),
      ext_penalty_(ext_penalty)
{
    assert(capacity >= 1 && "a queue buffers at least one word");
    assert(ext_capacity >= 0 && ext_penalty >= 0);
}

void
HwQueue::assign(MessageId msg, LinkDir dir, int total_words, Cycle now)
{
    assert(isFree() && "queue already assigned");
    assert(total_words > 0);
    (void)now;
    assigned_ = msg;
    dir_ = dir;
    words_remaining_ = total_words;
    ++assignments_;
}

void
HwQueue::release(Cycle now)
{
    assert(canRelease());
    (void)now;
    assigned_ = kInvalidMessage;
    words_remaining_ = 0;
}

void
HwQueue::push(Word word, Cycle now)
{
    assert(canPush());
    assert(word.msg == assigned_ && "queue carries one message at a time");
    word.enqueuedAt = now;
    word.wasExtended = size() >= capacity_;
    if (word.wasExtended)
        ++extended_words_;
    bool was_empty = words_.empty();
    words_.push_back(word);
    pushed_this_cycle_ = true;
    ++words_pushed_;
    if (was_empty)
        refreshFrontReady(now);
}

bool
HwQueue::canPop(Cycle now) const
{
    if (words_.empty() || popped_this_cycle_)
        return false;
    const Word& w = words_.front();
    return w.enqueuedAt < now && now >= front_ready_at_;
}

bool
HwQueue::pendingTimedEvent(Cycle now) const
{
    if (words_.empty() || canPop(now))
        return false;
    const Word& w = words_.front();
    return w.enqueuedAt >= now || now < front_ready_at_ ||
           popped_this_cycle_;
}

Word
HwQueue::pop(Cycle now)
{
    assert(canPop(now));
    Word word = words_.front();
    words_.pop_front();
    popped_this_cycle_ = true;
    --words_remaining_;
    if (!words_.empty())
        refreshFrontReady(now);
    return word;
}

void
HwQueue::refreshFrontReady(Cycle now)
{
    const Word& w = words_.front();
    // A word that spilled into the memory extension pays the extension
    // access penalty when it surfaces at the front.
    front_ready_at_ = now + (w.wasExtended ? ext_penalty_ : 0);
}

void
HwQueue::beginCycle(Cycle now)
{
    (void)now;
    pushed_this_cycle_ = false;
    popped_this_cycle_ = false;
    if (!isFree()) {
        ++busy_cycles_;
        occupancy_sum_ += size();
    }
}

} // namespace syscomm::sim
