#include "sim/recovery.h"

#include <utility>

#include "core/repair.h"

namespace syscomm::sim {

namespace {

/** Dead sets implied by a fully-applied plan: killed cells take every
 *  adjacent link with them, exactly as the injector does. */
void
deadSetsFromPlan(const FaultPlan& plan, const Topology& topo,
                 std::vector<char>& link_dead,
                 std::vector<char>& cell_dead)
{
    link_dead.assign(static_cast<std::size_t>(topo.numLinks()), 0);
    cell_dead.assign(static_cast<std::size_t>(topo.numCells()), 0);
    for (const FaultEvent& e : plan.events()) {
        if (e.kind == FaultKind::kKillLink) {
            link_dead[e.link] = 1;
        } else if (e.kind == FaultKind::kKillCell) {
            cell_dead[e.cell] = 1;
            for (CellId nbr : topo.neighbors(e.cell)) {
                if (auto l = topo.linkBetween(e.cell, nbr))
                    link_dead[*l] = 1;
            }
        }
    }
}

} // namespace

RecoveryDriver::RecoveryDriver(const Program& program,
                               const MachineSpec& spec)
    : program_(program), spec_(spec)
{}

RecoveryReport
RecoveryDriver::run(const RecoveryOptions& options)
{
    RecoveryReport rep;

    // ---- Phase 1: the fault-injected primary run, checkpointed. ----
    RunRequest req = options.request;
    req.collect = Collect::kNone; // checkpoints require stats-only
    req.labels.clear();
    req.observer = nullptr;
    req.faults = options.faults;

    SimSession primary(program_, spec_, options.session);
    std::vector<std::uint8_t> lastCheckpoint;
    Cycle lastCheckpointCycle = -1;
    RunResult res;
    if (options.checkpointEvery > 0) {
        req.pauseAt = options.checkpointEvery;
        res = primary.run(req);
        while (res.status == RunStatus::kPaused) {
            std::vector<std::uint8_t> bytes;
            if (primary.saveCheckpoint(bytes)) {
                lastCheckpoint = std::move(bytes);
                lastCheckpointCycle = res.cycles;
            }
            res = primary.resume(res.cycles + options.checkpointEvery);
        }
    } else {
        req.pauseAt = 0;
        res = primary.run(req);
    }
    rep.primary = std::move(res);
    if (rep.primary.status != RunStatus::kFaulted)
        return rep; // healthy (or deadlocked on its own merits): done
    rep.faulted = true;

    // ---- Phase 2: adopt checkpoint progress. ----
    std::vector<int> delivered(
        static_cast<std::size_t>(program_.numMessages()), 0);
    if (!lastCheckpoint.empty()) {
        CheckpointInfo info;
        if (peekCheckpointInfo(lastCheckpoint.data(),
                               lastCheckpoint.size(), info) &&
            info.readSeq.size() == delivered.size()) {
            delivered = std::move(info.readSeq);
            rep.checkpointCycle = lastCheckpointCycle;
        }
    }

    // ---- Phase 3: the degraded topology. ----
    const Topology& topo = spec_.topo;
    std::vector<char> linkDead;
    std::vector<char> cellDead;
    deadSetsFromPlan(*options.faults, topo, linkDead, cellDead);
    std::vector<Link> surviving;
    for (LinkIndex l = 0; l < topo.numLinks(); ++l) {
        if (!linkDead[l])
            surviving.push_back(topo.link(l));
        else
            ++rep.deadLinks;
    }
    for (char d : cellDead)
        rep.deadCells += d != 0;
    rep.degradedTopo = Topology::custom(topo.numCells(),
                                        std::move(surviving));

    // ---- Phase 4: the residual program, feasibility-checked. ----
    if (program_.totalOps() != program_.totalTransferOps()) {
        rep.error = "program has compute ops: their state cannot be "
                    "replayed from a checkpoint progress header";
        return rep;
    }
    Program residual(program_.numCells());
    for (MessageId m = 0; m < program_.numMessages(); ++m) {
        const int remaining =
            program_.messageLength(m) - delivered[m];
        if (remaining <= 0)
            continue;
        const MessageDecl& decl = program_.message(m);
        if (cellDead[decl.sender] || cellDead[decl.receiver]) {
            rep.error = "message '" + decl.name + "' unrecoverable: " +
                        (cellDead[decl.sender] ? "sender" : "receiver") +
                        std::string(" cell is dead");
            return rep;
        }
        if (rep.degradedTopo.routePath(decl.sender, decl.receiver)
                .empty()) {
            rep.error = "message '" + decl.name +
                        "' unrecoverable: no surviving route from " +
                        std::to_string(decl.sender) + " to " +
                        std::to_string(decl.receiver);
            return rep;
        }
        MessageId nm =
            residual.declareMessage(decl.name, decl.sender,
                                    decl.receiver);
        for (int w = 0; w < remaining; ++w) {
            residual.write(decl.sender, nm);
            residual.read(decl.receiver, nm);
        }
        ++rep.residualMessages;
        rep.residualWords += remaining;
    }
    if (rep.residualMessages == 0) {
        // Everything was already delivered by the checkpoint; the
        // fault froze only in-flight bookkeeping. Trivially recovered.
        rep.recoverable = true;
        rep.recovered = true;
        return rep;
    }

    // The naive W/R interleaving above is exactly the kind of schedule
    // that deadlocks on small queues; repair serializes it safely.
    RepairResult fix = repairProgram(residual);
    if (!fix.success) {
        rep.error = "repair failed on residual program: " + fix.error;
        return rep;
    }
    rep.repairMovedOps = fix.movedOps;
    rep.residualProgram = std::move(fix.program);
    rep.recoverable = true;

    // ---- Phase 5: carry surviving degrades, recompile, rerun. ----
    std::vector<FaultEvent> carried;
    for (const FaultEvent& e : options.faults->events()) {
        if (e.kind != FaultKind::kDegradeQueue || linkDead[e.link])
            continue;
        const Link& old = topo.link(e.link);
        auto nl = rep.degradedTopo.linkBetween(old.a, old.b);
        if (!nl)
            continue;
        FaultEvent carry = e;
        carry.cycle = 0; // the clamp is permanent hardware damage
        carry.link = *nl;
        carried.push_back(carry);
    }
    rep.carriedDegrades = static_cast<int>(carried.size());
    rep.recoveryPlan = FaultPlan(std::move(carried));

    MachineSpec degradedSpec = spec_;
    degradedSpec.topo = rep.degradedTopo;
    // Explicit recompile for the degraded routes; the session runs
    // over the shared handle (and a second run() would reuse it).
    auto compiled = CompiledProgram::compile(rep.residualProgram,
                                             rep.degradedTopo);
    SimSession recovery(compiled, degradedSpec, options.session);
    RunRequest rreq = options.request;
    rreq.collect = Collect::kNone;
    rreq.labels.clear();
    rreq.observer = nullptr;
    rreq.pauseAt = 0;
    rreq.faults =
        rep.recoveryPlan.empty() ? nullptr : &rep.recoveryPlan;
    rep.recovery = recovery.run(rreq);
    rep.recoveryMachineDigest = recovery.machineDigest();
    rep.recovered = rep.recovery.status == RunStatus::kCompleted;
    if (!rep.recovered && rep.error.empty()) {
        rep.error = std::string("recovery run ended ") +
                    runStatusName(rep.recovery.status);
    }
    return rep;
}

} // namespace syscomm::sim
