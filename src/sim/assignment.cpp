#include "sim/assignment.h"

#include <algorithm>
#include <cassert>

#include "core/mix.h"

namespace syscomm::sim {

// ---------------------------------------------------------------------
// StaticPolicy
// ---------------------------------------------------------------------

bool
StaticPolicy::initLink(LinkState& link,
                       std::vector<AssignmentDecision>& decisions)
{
    for (Crossing& c : link.crossings()) {
        int q = link.findFreeQueue();
        if (q < 0)
            return false; // not enough queues for a static assignment
        link.assignMsg(c.msg, q, 0);
        decisions.push_back({c.msg, q});
    }
    return true;
}

// ---------------------------------------------------------------------
// CompatiblePolicy
// ---------------------------------------------------------------------

CompatiblePolicy::CompatiblePolicy(std::vector<std::int64_t> labels,
                                   bool eager)
    : labels_(std::move(labels)), eager_(eager)
{}

void
CompatiblePolicy::tick(LinkState& link, Cycle now,
                       std::vector<AssignmentDecision>& decisions)
{
    // Serve strictly in ascending label order across the link's shared
    // queue pool: only the smallest label with unserved members may be
    // assigned this cycle (ordered rule); larger labels must wait.
    // Two linear passes over the crossings — this runs on the
    // simulator's per-cycle hot path, so no per-tick allocation.
    std::int64_t lowest = 0;
    bool found = false;
    for (const Crossing& c : link.crossings()) {
        assert(c.msg < static_cast<MessageId>(labels_.size()));
        if (c.assignedAt >= 0)
            continue;
        std::int64_t label = labels_[c.msg];
        if (!found || label < lowest) {
            lowest = label;
            found = true;
        }
    }
    if (!found)
        return; // every crossing served

    unserved_.clear();
    bool any_requested = false;
    for (Crossing& c : link.crossings()) {
        if (c.assignedAt >= 0 || labels_[c.msg] != lowest)
            continue;
        unserved_.push_back(&c);
        if (c.phase == CrossingPhase::kRequested)
            any_requested = true;
    }

    // Simultaneous assignment: all members of the group get separate
    // queues at once, or none do.
    if ((eager_ || any_requested) &&
        link.numFreeQueues() >= static_cast<int>(unserved_.size())) {
        for (Crossing* c : unserved_) {
            int q = link.findFreeQueue();
            assert(q >= 0);
            link.assignMsg(c->msg, q, now);
            decisions.push_back({c->msg, q});
        }
    }
}

// ---------------------------------------------------------------------
// FcfsPolicy
// ---------------------------------------------------------------------

void
FcfsPolicy::tick(LinkState& link, Cycle now,
                 std::vector<AssignmentDecision>& decisions)
{
    pending_.clear();
    for (Crossing& c : link.crossings()) {
        if (c.phase == CrossingPhase::kRequested)
            pending_.push_back(&c);
    }
    std::sort(pending_.begin(), pending_.end(),
              [](const Crossing* a, const Crossing* b) {
                  if (a->requestedAt != b->requestedAt)
                      return a->requestedAt < b->requestedAt;
                  return a->msg < b->msg;
              });
    for (Crossing* c : pending_) {
        int q = link.findFreeQueue();
        if (q < 0)
            break;
        link.assignMsg(c->msg, q, now);
        decisions.push_back({c->msg, q});
    }
}

// ---------------------------------------------------------------------
// RandomPolicy
// ---------------------------------------------------------------------

namespace {

/**
 * Counter-based bit generator for RandomPolicy's per-link streams:
 * splitmix64 over a mixed (seed, link, counter) state. Cheap to
 * construct per shuffle — no large state to seed, unlike mt19937.
 */
class SplitMix64
{
  public:
    using result_type = std::uint64_t;

    SplitMix64(std::uint64_t seed, std::uint64_t link,
               std::uint64_t counter)
        // Golden-ratio multiples keep the three inputs from aliasing
        // (seed=1,link=2 must not collide with seed=2,link=1).
        : state_(seed + 0x9e3779b97f4a7c15ull * (link + 1) +
                 0xbf58476d1ce4e5b9ull * (counter + 1))
    {}

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    result_type operator()() { return splitmix64(state_); }

  private:
    std::uint64_t state_;
};

} // namespace

void
RandomPolicy::tick(LinkState& link, Cycle now,
                   std::vector<AssignmentDecision>& decisions)
{
    // A tick that cannot change link state must not advance the RNG
    // stream: without a free queue (or without a pending request) the
    // shuffle outcome is unobservable, and skipping the draw is what
    // lets the event kernel fast-forward over such cycles without
    // desynchronizing from the dense kernel.
    if (link.numFreeQueues() == 0)
        return;
    pending_.clear();
    for (Crossing& c : link.crossings()) {
        if (c.phase == CrossingPhase::kRequested)
            pending_.push_back(&c);
    }
    if (pending_.empty())
        return;

    std::size_t idx = static_cast<std::size_t>(link.index());
    if (idx >= decisions_.size())
        decisions_.resize(idx + 1, 0);
    SplitMix64 rng(seed_, static_cast<std::uint64_t>(link.index()),
                   decisions_[idx]);
    std::shuffle(pending_.begin(), pending_.end(), rng);
    for (Crossing* c : pending_) {
        int q = link.findFreeQueue();
        if (q < 0)
            break;
        link.assignMsg(c->msg, q, now);
        decisions.push_back({c->msg, q});
        ++decisions_[idx];
    }
}

// ---------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------

const char*
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::kCompatible:
        return "compatible";
      case PolicyKind::kCompatibleEager:
        return "compatible-eager";
      case PolicyKind::kStatic:
        return "static";
      case PolicyKind::kFcfs:
        return "fcfs";
      case PolicyKind::kRandom:
        return "random";
    }
    return "?";
}

std::unique_ptr<AssignmentPolicy>
makePolicy(PolicyKind kind, std::vector<std::int64_t> labels,
           std::uint64_t seed)
{
    switch (kind) {
      case PolicyKind::kCompatible:
        return std::make_unique<CompatiblePolicy>(std::move(labels), false);
      case PolicyKind::kCompatibleEager:
        return std::make_unique<CompatiblePolicy>(std::move(labels), true);
      case PolicyKind::kStatic:
        return std::make_unique<StaticPolicy>();
      case PolicyKind::kFcfs:
        return std::make_unique<FcfsPolicy>();
      case PolicyKind::kRandom:
        return std::make_unique<RandomPolicy>(seed);
    }
    return nullptr;
}

} // namespace syscomm::sim
