#include "sim/assignment.h"

#include <algorithm>
#include <cassert>

namespace syscomm::sim {

// ---------------------------------------------------------------------
// StaticPolicy
// ---------------------------------------------------------------------

bool
StaticPolicy::initLink(LinkState& link,
                       std::vector<AssignmentDecision>& decisions)
{
    for (Crossing& c : link.crossings()) {
        int q = link.findFreeQueue();
        if (q < 0)
            return false; // not enough queues for a static assignment
        link.assignMsg(c.msg, q, 0);
        decisions.push_back({c.msg, q});
    }
    return true;
}

// ---------------------------------------------------------------------
// CompatiblePolicy
// ---------------------------------------------------------------------

CompatiblePolicy::CompatiblePolicy(std::vector<std::int64_t> labels,
                                   bool eager)
    : labels_(std::move(labels)), eager_(eager)
{}

void
CompatiblePolicy::tick(LinkState& link, Cycle now,
                       std::vector<AssignmentDecision>& decisions)
{
    // Serve strictly in ascending label order across the link's shared
    // queue pool: only the smallest label with unserved members may be
    // assigned this cycle (ordered rule); larger labels must wait.
    // Two linear passes over the crossings — this runs on the
    // simulator's per-cycle hot path, so no per-tick allocation.
    std::int64_t lowest = 0;
    bool found = false;
    for (const Crossing& c : link.crossings()) {
        assert(c.msg < static_cast<MessageId>(labels_.size()));
        if (c.assignedAt >= 0)
            continue;
        std::int64_t label = labels_[c.msg];
        if (!found || label < lowest) {
            lowest = label;
            found = true;
        }
    }
    if (!found)
        return; // every crossing served

    unserved_.clear();
    bool any_requested = false;
    for (Crossing& c : link.crossings()) {
        if (c.assignedAt >= 0 || labels_[c.msg] != lowest)
            continue;
        unserved_.push_back(&c);
        if (c.phase == CrossingPhase::kRequested)
            any_requested = true;
    }

    // Simultaneous assignment: all members of the group get separate
    // queues at once, or none do.
    if ((eager_ || any_requested) &&
        link.numFreeQueues() >= static_cast<int>(unserved_.size())) {
        for (Crossing* c : unserved_) {
            int q = link.findFreeQueue();
            assert(q >= 0);
            link.assignMsg(c->msg, q, now);
            decisions.push_back({c->msg, q});
        }
    }
}

// ---------------------------------------------------------------------
// FcfsPolicy
// ---------------------------------------------------------------------

void
FcfsPolicy::tick(LinkState& link, Cycle now,
                 std::vector<AssignmentDecision>& decisions)
{
    std::vector<Crossing*> pending;
    for (Crossing& c : link.crossings()) {
        if (c.phase == CrossingPhase::kRequested)
            pending.push_back(&c);
    }
    std::sort(pending.begin(), pending.end(),
              [](const Crossing* a, const Crossing* b) {
                  if (a->requestedAt != b->requestedAt)
                      return a->requestedAt < b->requestedAt;
                  return a->msg < b->msg;
              });
    for (Crossing* c : pending) {
        int q = link.findFreeQueue();
        if (q < 0)
            break;
        link.assignMsg(c->msg, q, now);
        decisions.push_back({c->msg, q});
    }
}

// ---------------------------------------------------------------------
// RandomPolicy
// ---------------------------------------------------------------------

void
RandomPolicy::tick(LinkState& link, Cycle now,
                   std::vector<AssignmentDecision>& decisions)
{
    std::vector<Crossing*> pending;
    for (Crossing& c : link.crossings()) {
        if (c.phase == CrossingPhase::kRequested)
            pending.push_back(&c);
    }
    std::shuffle(pending.begin(), pending.end(), rng_);
    for (Crossing* c : pending) {
        int q = link.findFreeQueue();
        if (q < 0)
            break;
        link.assignMsg(c->msg, q, now);
        decisions.push_back({c->msg, q});
    }
}

// ---------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------

const char*
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::kCompatible:
        return "compatible";
      case PolicyKind::kCompatibleEager:
        return "compatible-eager";
      case PolicyKind::kStatic:
        return "static";
      case PolicyKind::kFcfs:
        return "fcfs";
      case PolicyKind::kRandom:
        return "random";
    }
    return "?";
}

std::unique_ptr<AssignmentPolicy>
makePolicy(PolicyKind kind, std::vector<std::int64_t> labels,
           std::uint64_t seed)
{
    switch (kind) {
      case PolicyKind::kCompatible:
        return std::make_unique<CompatiblePolicy>(std::move(labels), false);
      case PolicyKind::kCompatibleEager:
        return std::make_unique<CompatiblePolicy>(std::move(labels), true);
      case PolicyKind::kStatic:
        return std::make_unique<StaticPolicy>();
      case PolicyKind::kFcfs:
        return std::make_unique<FcfsPolicy>();
      case PolicyKind::kRandom:
        return std::make_unique<RandomPolicy>(seed);
    }
    return nullptr;
}

} // namespace syscomm::sim
