#pragma once

/**
 * @file
 * Run-time state of one link: its pool of hardware queues and the
 * request/assignment lifecycle of every message crossing it.
 *
 * A LinkState owns nothing. Its queues, crossing records and crossing
 * lookup index are spans over SimArena pools (sim/arena.h) shared by
 * every link of the machine, so the per-link state of a 100k-link
 * array is three contiguous allocations instead of hundreds of
 * thousands — the layout the dense-active scaling curve needs. The
 * spans are fixed at arena build time: the crossing span is sized to
 * the number of routes the session registers (addCrossing fills it,
 * up to capacity), and the queue span to MachineSpec::queuesPerLink.
 */

#include <utility>
#include <vector>

#include "core/types.h"
#include "sim/queue.h"
#include "sim/span.h"

namespace syscomm::sim {

/** Lifecycle of a message on one link. */
enum class CrossingPhase : std::uint8_t
{
    kIdle = 0,  ///< Has not yet asked for a queue here.
    kRequested, ///< Header has arrived (or sender is ready); waiting.
    kAssigned,  ///< Holds a queue.
    kDone,      ///< All words passed; queue released.
};

/** One message's relationship with one link. */
struct Crossing
{
    MessageId msg = kInvalidMessage;
    LinkDir dir = LinkDir::kForward;
    /** Which hop of the message's route this link is (0-based). */
    int hopIndex = 0;
    /** Total words of the message. */
    int words = 0;
    /**
     * Is this the route's last hop (the receiver pops here)? Static
     * route information stamped by the session at compile time and
     * copied into the queue at assignment, so the kernels' hot hooks
     * never need a crossing lookup to answer it.
     */
    bool finalHop = false;

    CrossingPhase phase = CrossingPhase::kIdle;
    int queueId = -1;
    Cycle requestedAt = -1;
    Cycle assignedAt = -1;
};

/** Queue pool + crossings of one link (views into the SimArena). */
class LinkState
{
  public:
    /**
     * @p queues / @p crossing_storage / @p index_storage are arena
     * slices that must outlive the link; crossing/index storage is
     * capacity — crossings() reports only the registered prefix.
     * SimArena is the only production caller.
     */
    LinkState(LinkIndex index, Span<HwQueue> queues,
              Span<Crossing> crossing_storage,
              Span<std::pair<MessageId, int>> index_storage);

    LinkIndex index() const { return index_; }

    /**
     * Reset every queue and the dynamic half of every crossing to the
     * start-of-run state, in place. The static crossing registration
     * (message, direction, hop index, word count) survives — that is
     * the compile-once part a SimSession reuses across runs.
     */
    void resetRun();

    /** Register a message that will cross this link (machine setup). */
    void addCrossing(MessageId msg, LinkDir dir, int hop_index, int words);

    Span<Crossing> crossings()
    {
        return {crossings_, static_cast<std::size_t>(num_crossings_)};
    }
    Span<const Crossing> crossings() const
    {
        return {crossings_, static_cast<std::size_t>(num_crossings_)};
    }

    /** The crossing record for @p msg (must exist). */
    Crossing& crossing(MessageId msg);
    const Crossing& crossing(MessageId msg) const;
    bool hasCrossing(MessageId msg) const;

    Span<HwQueue> queues() { return queues_; }
    Span<const HwQueue> queues() const
    {
        return {queues_.data(), queues_.size()};
    }
    HwQueue& queue(int id) { return queues_[static_cast<std::size_t>(id)]; }

    int numFreeQueues() const;
    /** Lowest-id free queue, or -1. */
    int findFreeQueue() const;

    /** Mark @p msg as waiting for a queue here. */
    void request(MessageId msg, Cycle now);

    /** Give @p msg the queue @p queue_id. */
    void assignMsg(MessageId msg, int queue_id, Cycle now);

    /**
     * Pop bookkeeping: called after the last word of @p msg left its
     * queue; releases the queue back to the pool.
     */
    void finishMsg(MessageId msg, Cycle now);

    /**
     * Settle the lazy per-queue statistics through the start of cycle
     * @p now. The kernels no longer need a per-cycle call — queue
     * mutations settle automatically — but tests drive queues through
     * this legacy entry point.
     */
    void beginCycle(Cycle now);

  private:
    LinkIndex index_;
    Span<HwQueue> queues_;
    /**
     * Crossings in registration order (the policies' scan order);
     * only the lookup index is sorted by message. Both are arena
     * slices of capacity max_crossings_, filled to num_crossings_.
     * crossing() is a binary search over the few messages that cross
     * this link — the dense by-MessageId vector this replaces cost
     * O(links x messages) memory machine-wide.
     */
    Crossing* crossings_;
    std::pair<MessageId, int>* crossing_index_;
    int num_crossings_ = 0;
    int max_crossings_;
};

} // namespace syscomm::sim
