#pragma once

/**
 * @file
 * Run-time state of one link: its pool of hardware queues and the
 * request/assignment lifecycle of every message crossing it.
 */

#include <optional>
#include <vector>

#include "core/types.h"
#include "sim/queue.h"

namespace syscomm::sim {

/** Lifecycle of a message on one link. */
enum class CrossingPhase : std::uint8_t
{
    kIdle = 0,  ///< Has not yet asked for a queue here.
    kRequested, ///< Header has arrived (or sender is ready); waiting.
    kAssigned,  ///< Holds a queue.
    kDone,      ///< All words passed; queue released.
};

/** One message's relationship with one link. */
struct Crossing
{
    MessageId msg = kInvalidMessage;
    LinkDir dir = LinkDir::kForward;
    /** Which hop of the message's route this link is (0-based). */
    int hopIndex = 0;
    /** Total words of the message. */
    int words = 0;
    /**
     * Is this the route's last hop (the receiver pops here)? Static
     * route information stamped by the session at compile time and
     * copied into the queue at assignment, so the kernels' hot hooks
     * never need a crossing lookup to answer it.
     */
    bool finalHop = false;

    CrossingPhase phase = CrossingPhase::kIdle;
    int queueId = -1;
    Cycle requestedAt = -1;
    Cycle assignedAt = -1;
};

/** Queue pool + crossings of one link. */
class LinkState
{
  public:
    LinkState(LinkIndex index, int num_queues, int capacity,
              int ext_capacity, int ext_penalty);

    LinkIndex index() const { return index_; }

    /**
     * Reset every queue and the dynamic half of every crossing to the
     * start-of-run state, in place. The static crossing registration
     * (message, direction, hop index, word count) survives — that is
     * the compile-once part a SimSession reuses across runs.
     */
    void resetRun();

    /** Register a message that will cross this link (machine setup). */
    void addCrossing(MessageId msg, LinkDir dir, int hop_index, int words);

    std::vector<Crossing>& crossings() { return crossings_; }
    const std::vector<Crossing>& crossings() const { return crossings_; }

    /** The crossing record for @p msg (must exist). */
    Crossing& crossing(MessageId msg);
    const Crossing& crossing(MessageId msg) const;
    bool hasCrossing(MessageId msg) const;

    std::vector<HwQueue>& queues() { return queues_; }
    const std::vector<HwQueue>& queues() const { return queues_; }
    HwQueue& queue(int id) { return queues_[id]; }

    int numFreeQueues() const;
    /** Lowest-id free queue, or -1. */
    int findFreeQueue() const;

    /** Mark @p msg as waiting for a queue here. */
    void request(MessageId msg, Cycle now);

    /** Give @p msg the queue @p queue_id. */
    void assignMsg(MessageId msg, int queue_id, Cycle now);

    /**
     * Pop bookkeeping: called after the last word of @p msg left its
     * queue; releases the queue back to the pool.
     */
    void finishMsg(MessageId msg, Cycle now);

    /**
     * Settle the lazy per-queue statistics through the start of cycle
     * @p now. The kernels no longer need a per-cycle call — queue
     * mutations settle automatically — but tests drive queues through
     * this legacy entry point.
     */
    void beginCycle(Cycle now);

  private:
    LinkIndex index_;
    std::vector<HwQueue> queues_;
    std::vector<Crossing> crossings_;
    /**
     * (msg, index in crossings_) sorted by msg; crossing() is a
     * binary search over the few messages that cross this link. The
     * dense by-MessageId vector this replaces cost O(links x
     * messages) memory and construction time machine-wide —
     * quadratic on large arrays where both scale with cell count.
     */
    std::vector<std::pair<MessageId, int>> crossing_index_;
};

} // namespace syscomm::sim
