#pragma once

/**
 * @file
 * SweepRunner: a threaded driver for simulation sweeps.
 *
 * The paper's deadlock-avoidance results only show at scale — sweeps
 * over seeds, policies, queue counts and cycle budgets — and a sweep
 * is embarrassingly parallel: every RunRequest is independent. The
 * runner fans a request vector across worker threads, giving each
 * worker its own SimSession — and with it its own SimArena, so the
 * hot machine state of concurrent runs lives in disjoint per-worker
 * pools (compile once per worker, run many) — and
 * aggregates a SweepSummary: per-request results in request order, a
 * status histogram, cycle percentiles, and per-policy statistics.
 *
 * Determinism: results land in request order and every aggregate is
 * computed from that ordered vector after the workers join, so the
 * summary is identical to a serial loop over the same requests (and
 * tests/test_session.cpp asserts exactly that). The one shared input
 * is the Program/MachineSpec pair, which workers only read; compute
 * callbacks must not capture shared mutable state if the sweep is
 * threaded. A RunRequest::observer fires on whichever worker executes
 * that request — an observer shared across requests sees concurrent
 * calls and must be thread-safe.
 */

#include <vector>

#include "sim/session.h"

namespace syscomm::sim {

/** Sweep-wide knobs. */
struct SweepOptions
{
    /**
     * Worker threads. <= 0 picks std::thread::hardware_concurrency();
     * the count is clamped to the number of requests, and a
     * single-worker sweep runs inline without spawning threads.
     */
    int numWorkers = 0;
};

/** Aggregates over the runs that used one policy. */
struct PolicySummary
{
    PolicyKind policy = PolicyKind::kCompatible;
    int runs = 0;
    int completed = 0;
    int deadlocked = 0;
    int budgetExhausted = 0;
    int configErrors = 0;
    /** Truncated runs (RunRequest::pauseAt; sweeps normally use 0). */
    int paused = 0;
    /** Mean completion cycles over completed runs (0 when none). */
    double meanCycles = 0.0;
    /** Mean queue-request wait over completed runs (0 when none). */
    double meanRequestWait = 0.0;
};

/** Everything a sweep produced. */
struct SweepSummary
{
    /** One result per request, in request order. */
    std::vector<RunResult> results;

    /** Runs per terminal status, indexed by RunStatus. */
    std::int64_t statusCounts[kNumRunStatuses] = {};

    /**
     * Cycle-count distribution over runs that simulated (config
     * errors excluded). Percentiles are nearest-rank.
     */
    Cycle minCycles = 0;
    Cycle maxCycles = 0;
    Cycle p50Cycles = 0;
    Cycle p90Cycles = 0;
    Cycle p99Cycles = 0;
    double meanCycles = 0.0;

    /** Per-policy aggregates, ascending PolicyKind, used kinds only. */
    std::vector<PolicySummary> perPolicy;

    int workersUsed = 1;
    double wallSeconds = 0.0;

    std::int64_t completed() const
    {
        return statusCounts[static_cast<int>(RunStatus::kCompleted)];
    }
    std::int64_t deadlocked() const
    {
        return statusCounts[static_cast<int>(RunStatus::kDeadlocked)];
    }

    /** Multi-line human-readable dump. */
    std::string str() const;
};

/**
 * Aggregate already-computed results (the serial path; also how the
 * threaded runner builds its summary after the workers join).
 * @p results must be in request order and match @p requests in size.
 */
SweepSummary summarizeSweep(std::vector<RunResult> results,
                            const std::vector<RunRequest>& requests);

/**
 * Threaded sweep driver. Construct once per (program, machine,
 * session-config) triple, then run() any number of request batches —
 * the per-worker SimSessions are built on first use and cached across
 * batches, so repeated run() calls pay no recompilation, and the
 * worker threads themselves persist: the first threaded run() spawns
 * them, later batches are handed over a request queue, so sweeping
 * many small batches pays thread start-up once instead of per call.
 * The program and spec must outlive the runner. run() itself is not
 * reentrant (one sweep at a time per runner).
 */
class SweepRunner
{
  public:
    SweepRunner(const Program& program, const MachineSpec& spec,
                SessionOptions session = {}, SweepOptions options = {});
    ~SweepRunner();

    SweepRunner(const SweepRunner&) = delete;
    SweepRunner& operator=(const SweepRunner&) = delete;

    /** Fan the requests across the workers and aggregate. */
    SweepSummary run(const std::vector<RunRequest>& requests);

    /** Worker count a run() with this many requests would use. */
    int workersFor(std::size_t num_requests) const;

    /** Persistent worker threads currently alive (0 before the first
     *  threaded batch; they are spawned on demand and never shed). */
    int pooledWorkers() const;

  private:
    struct Pool; // the persistent worker pool (batch.cpp)

    const Program& program_;
    const MachineSpec& spec_;
    SessionOptions session_;
    SweepOptions options_;
    /**
     * Session config handed to worker slots: session_ plus the
     * pre-resolved labels once some batch needed them (so the
     * labeler runs once per runner, not once per worker).
     */
    SessionOptions shared_;
    /** Cached per-slot sessions; slot 0 is the calling thread's. */
    std::vector<std::unique_ptr<SimSession>> sessions_;
    std::unique_ptr<Pool> pool_;
};

} // namespace syscomm::sim
