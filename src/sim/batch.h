#pragma once

/**
 * @file
 * SweepRunner: a threaded driver for simulation sweeps.
 *
 * The paper's deadlock-avoidance results only show at scale — sweeps
 * over seeds, policies, queue counts and cycle budgets — and a sweep
 * is embarrassingly parallel: every RunRequest is independent. The
 * runner fans a request vector across worker threads, giving each
 * worker its own SimSession — and with it its own SimArena, so the
 * hot machine state of concurrent runs lives in disjoint per-worker
 * pools (compile once per worker, run many) — and
 * aggregates a SweepSummary: per-request results in request order, a
 * status histogram, cycle percentiles, and per-policy statistics.
 *
 * Determinism: results land in request order and every aggregate is
 * computed from that ordered vector after the workers join, so the
 * summary is identical to a serial loop over the same requests (and
 * tests/test_session.cpp asserts exactly that). The one shared input
 * is the Program/MachineSpec pair, which workers only read; compute
 * callbacks must not capture shared mutable state if the sweep is
 * threaded. A RunRequest::observer fires on whichever worker executes
 * that request — an observer shared across requests sees concurrent
 * calls and must be thread-safe.
 */

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "sim/session.h"

namespace syscomm::sim {

/**
 * A persistent pool of worker threads with work-stealing dispatch:
 * the thread-management half of SweepRunner, split out so drivers
 * whose work items are not "one request on my one machine" — above
 * all ShapeSweep, whose items are (shape × request) grid cells
 * served by per-shape session pools — can fan out over the same
 * machinery. Threads are spawned on demand by the
 * first dispatch that needs them and parked between batches; the
 * mutex hand-off orders everything the caller wrote before dispatch()
 * against the workers' reads, so callers may freely prepare per-slot
 * state (sessions, buffers) between batches.
 */
class WorkerPool
{
  public:
    WorkerPool();
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    /**
     * Run @p job(slot, index) for every index in [0, count), spread
     * over @p workers slots by a shared work-stealing counter. Slot 0
     * is the calling thread; slots 1..workers-1 are pool threads. The
     * call blocks until every index completed; an exception thrown by
     * any slot is parked and rethrown here after the join (first slot
     * wins), so a throwing job fails the dispatch, not the process.
     * Not reentrant — one dispatch at a time per pool.
     */
    void dispatch(int workers, std::size_t count,
                  const std::function<void(int, std::size_t)>& job);

    /** Pool threads currently alive (spawned on demand, never shed). */
    int pooledWorkers() const;

  private:
    struct State;
    std::unique_ptr<State> state_;
};

/**
 * Worker count a dispatch over @p work_items should use: the shared
 * sizing policy of every WorkerPool client (SweepRunner, ShapeSweep).
 * @p requested <= 0 picks std::thread::hardware_concurrency() — and
 * because that call may legitimately return 0 ("not computable"),
 * the result is floored at 1 *after* the hardware lookup, so an
 * unknowable core count degrades to a serial sweep, never to a
 * zero-worker one. The result is also clamped to the number of work
 * items (threads with nothing to steal are pure overhead), and the
 * floor applies last: even work_items == 0 yields 1, and a
 * one-worker dispatch runs inline on the calling thread without
 * spawning anything (WorkerPool::dispatch's workers == 1 path) —
 * the "single-worker sweeps are really serial" promise SweepOptions
 * and ShapeSweepOptions make, which tests/test_shape_sweep.cpp pins
 * via pooledWorkers().
 */
int clampWorkers(int requested, std::size_t work_items);

/** Sweep-wide knobs. */
struct SweepOptions
{
    /**
     * Worker threads. <= 0 picks std::thread::hardware_concurrency();
     * the count is clamped to the number of requests, and a
     * single-worker sweep runs inline without spawning threads.
     */
    int numWorkers = 0;
};

/** Aggregates over the runs that used one policy. */
struct PolicySummary
{
    PolicyKind policy = PolicyKind::kCompatible;
    int runs = 0;
    int completed = 0;
    int deadlocked = 0;
    int budgetExhausted = 0;
    int configErrors = 0;
    /** Truncated runs (RunRequest::pauseAt; sweeps normally use 0). */
    int paused = 0;
    /** Runs frozen with injected faults implicated (kFaulted). */
    int faulted = 0;
    /** Mean completion cycles over completed runs (0 when none). */
    double meanCycles = 0.0;
    /** Mean queue-request wait over completed runs (0 when none). */
    double meanRequestWait = 0.0;
};

/** Everything a sweep produced. */
struct SweepSummary
{
    /** One result per request, in request order. */
    std::vector<RunResult> results;

    /** Runs per terminal status, indexed by RunStatus. */
    std::int64_t statusCounts[kNumRunStatuses] = {};

    /**
     * Cycle-count distribution over runs that simulated (config
     * errors excluded). Percentiles are nearest-rank. When *no* run
     * simulated (every run was a config error, or the batch was
     * empty) there is no distribution: the five order statistics are
     * -1 — never a fabricated 0, which is a legal cycle count —
     * and meanCycles is 0.
     */
    Cycle minCycles = -1;
    Cycle maxCycles = -1;
    Cycle p50Cycles = -1;
    Cycle p90Cycles = -1;
    Cycle p99Cycles = -1;
    double meanCycles = 0.0;

    /** Per-policy aggregates, ascending PolicyKind, used kinds only. */
    std::vector<PolicySummary> perPolicy;

    int workersUsed = 1;
    double wallSeconds = 0.0;

    std::int64_t completed() const
    {
        return statusCounts[static_cast<int>(RunStatus::kCompleted)];
    }
    std::int64_t deadlocked() const
    {
        return statusCounts[static_cast<int>(RunStatus::kDeadlocked)];
    }

    /** Multi-line human-readable dump. */
    std::string str() const;
};

/**
 * Aggregate already-computed results (the serial path; also how the
 * threaded runner builds its summary after the workers join).
 * @p results must be in request order and match @p requests in size.
 */
SweepSummary summarizeSweep(std::vector<RunResult> results,
                            const std::vector<RunRequest>& requests);

/**
 * Threaded sweep driver. Construct once per (program, machine,
 * session-config) triple, then run() any number of request batches —
 * the per-worker SimSessions are built on first use and cached across
 * batches, so repeated run() calls pay no recompilation, and the
 * worker threads themselves persist: the first threaded run() spawns
 * them, later batches are handed over a request queue, so sweeping
 * many small batches pays thread start-up once instead of per call.
 * The program and spec must outlive the runner. run() itself is not
 * reentrant (one sweep at a time per runner).
 */
class SweepRunner
{
  public:
    SweepRunner(const Program& program, const MachineSpec& spec,
                SessionOptions session = {}, SweepOptions options = {});
    ~SweepRunner();

    SweepRunner(const SweepRunner&) = delete;
    SweepRunner& operator=(const SweepRunner&) = delete;

    /** Fan the requests across the workers and aggregate. */
    SweepSummary run(const std::vector<RunRequest>& requests);

    /** Worker count a run() with this many requests would use. */
    int workersFor(std::size_t num_requests) const;

    /** Persistent worker threads currently alive (0 before the first
     *  threaded batch; they are spawned on demand and never shed). */
    int pooledWorkers() const;

  private:
    const Program& program_;
    const MachineSpec& spec_;
    SessionOptions session_;
    SweepOptions options_;
    /**
     * Program-side analyses shared by every worker session: built on
     * the first run() and handed to each slot, so validation, the
     * competing analysis and the labeler run once per runner — not
     * once per worker (CompiledProgram's lazy labeling is once-flag
     * guarded, so label-needing batches resolve labels exactly once
     * even when the first resolver is a worker thread).
     */
    std::shared_ptr<const CompiledProgram> compiled_;
    /** Cached per-slot sessions; slot 0 is the calling thread's. */
    std::vector<std::unique_ptr<SimSession>> sessions_;
    WorkerPool pool_;
};

} // namespace syscomm::sim
