#include "sim/cell_exec.h"

namespace syscomm::sim {

const char*
blockReasonName(BlockReason reason)
{
    switch (reason) {
      case BlockReason::kNone:
        return "none";
      case BlockReason::kQueueNotAssigned:
        return "waiting for queue assignment";
      case BlockReason::kQueueFull:
        return "output queue full";
      case BlockReason::kWordNotArrived:
        return "input word not available";
      case BlockReason::kMemoryStall:
        return "local memory access";
      case BlockReason::kLinkDead:
        return "link killed by fault";
      case BlockReason::kLinkStalled:
        return "link stalled by fault";
      case BlockReason::kCellDead:
        return "cell killed by fault";
    }
    return "?";
}

} // namespace syscomm::sim
