#pragma once

/**
 * @file
 * Per-cell execution state. The machine drives one of these per cell;
 * it also implements the CellContext visible to compute callbacks.
 */

#include <string>
#include <vector>

#include "core/cell_context.h"
#include "core/op.h"
#include "core/types.h"

namespace syscomm::sim {

/** Why a cell could not execute its current op this cycle. */
enum class BlockReason : std::uint8_t
{
    kNone = 0,
    kQueueNotAssigned, ///< The needed queue has not been assigned yet.
    kQueueFull,        ///< Output queue (incl. extension) is full.
    kWordNotArrived,   ///< Input queue empty or word not consumable yet.
    kMemoryStall,      ///< Memory-to-memory model staging cycles.
};

const char* blockReasonName(BlockReason reason);

/** Run-time state of one cell. */
class CellRuntime : public CellContext
{
  public:
    CellRuntime(CellId id, const std::vector<Op>* ops)
        : id_(id), ops_(ops)
    {}

    // ------------------------------------------------------------------
    // Program counter
    // ------------------------------------------------------------------

    bool done() const { return pc_ >= static_cast<int>(ops_->size()); }
    int pc() const { return pc_; }
    const Op& currentOp() const { return (*ops_)[pc_]; }

    /** Move to the next op, resetting per-op staging state. */
    void advance()
    {
        ++pc_;
        stall_remaining_ = -1;
        read_completed_ = false;
    }

    /**
     * Return to the start-of-run state, keeping the locals storage
     * for reuse (SimSession's run-many reset path). Equivalent to a
     * fresh CellRuntime over the same op list.
     */
    void resetRun()
    {
        pc_ = 0;
        now_ = 0;
        last_read_ = 0.0;
        next_write_ = 0.0;
        has_staged_write_ = false;
        locals_.clear(); // local(i) refills with 0.0 on demand
        stall_remaining_ = -1;
        read_completed_ = false;
        lastBlock = BlockReason::kNone;
        lastVisitCycle = 0;
    }

    // ------------------------------------------------------------------
    // CellContext (visible to compute callbacks)
    // ------------------------------------------------------------------

    double lastRead() const override { return last_read_; }

    void setNextWrite(double value) override
    {
        next_write_ = value;
        has_staged_write_ = true;
    }

    double& local(int index) override
    {
        if (index >= static_cast<int>(locals_.size()))
            locals_.resize(index + 1, 0.0);
        return locals_[index];
    }

    CellId cellId() const override { return id_; }
    Cycle now() const override { return now_; }

    // ------------------------------------------------------------------
    // Machine-facing helpers
    // ------------------------------------------------------------------

    void setNow(Cycle now) { now_ = now; }

    /**
     * Value the next W op sends: the explicitly staged value if any,
     * otherwise the last word read (so bare R/W pairs forward words
     * unchanged, like the X streams of Fig. 2).
     */
    double takeWriteValue()
    {
        double v = has_staged_write_ ? next_write_ : last_read_;
        has_staged_write_ = false;
        return v;
    }

    void recordRead(double value) { last_read_ = value; }

    /** Memory-to-memory staging state (see machine.cpp). */
    int stallRemaining() const { return stall_remaining_; }
    void setStallRemaining(int v) { stall_remaining_ = v; }
    bool readCompleted() const { return read_completed_; }
    void setReadCompleted(bool v) { read_completed_ = v; }

    BlockReason lastBlock = BlockReason::kNone;

    /**
     * Cycle of the cell's most recent visit by the simulation kernel.
     * The event-driven kernel uses it to settle blocked-cycle spans
     * lazily: a sleeping cell is charged (wake cycle - 1 -
     * lastVisitCycle) blocked cycles when it is next visited, exactly
     * what the dense reference kernel accumulates one cycle at a time.
     */
    Cycle lastVisitCycle = 0;

  private:
    CellId id_;
    const std::vector<Op>* ops_;
    int pc_ = 0;
    Cycle now_ = 0;

    double last_read_ = 0.0;
    double next_write_ = 0.0;
    bool has_staged_write_ = false;
    std::vector<double> locals_;

    int stall_remaining_ = -1;
    bool read_completed_ = false;
};

} // namespace syscomm::sim
