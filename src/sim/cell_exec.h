#pragma once

/**
 * @file
 * Per-cell execution state. The machine drives one of these per cell;
 * it also implements the CellContext visible to compute callbacks.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/cell_context.h"
#include "core/op.h"
#include "core/types.h"
#include "sim/fnv.h"
#include "sim/serial.h"

namespace syscomm::sim {

/** Why a cell could not execute its current op this cycle. */
enum class BlockReason : std::uint8_t
{
    kNone = 0,
    kQueueNotAssigned, ///< The needed queue has not been assigned yet.
    kQueueFull,        ///< Output queue (incl. extension) is full.
    kWordNotArrived,   ///< Input queue empty or word not consumable yet.
    kMemoryStall,      ///< Memory-to-memory model staging cycles.
    kLinkDead,         ///< Fault injection killed the op's link.
    kLinkStalled,      ///< Fault injection is stalling the op's link.
    kCellDead,         ///< Fault injection killed this cell.
};

const char* blockReasonName(BlockReason reason);

/** Run-time state of one cell. */
class CellRuntime : public CellContext
{
  public:
    /**
     * @p ops must stay alive and unchanged for the cell's lifetime
     * (SimSession points cells at the Program's op lists). The data
     * pointer and length are cached flat: currentOp() on the kernel
     * hot path must not chase the vector header — a dependent load
     * into a scattered heap block, one per cell per cycle on
     * dense-active workloads.
     */
    CellRuntime(CellId id, const std::vector<Op>* ops)
        : ops_(ops->data()),
          num_ops_(static_cast<int>(ops->size())),
          id_(id)
    {}

    // ------------------------------------------------------------------
    // Program counter
    // ------------------------------------------------------------------

    bool done() const { return pc_ >= num_ops_; }
    int pc() const { return pc_; }
    const Op& currentOp() const { return ops_[pc_]; }
    /**
     * Address of the current op without touching the op array — the
     * kernels' software-prefetch stages compute prefetch targets from
     * already-resident cell lines only.
     */
    const Op* currentOpAddr() const { return ops_ + pc_; }

    /** Move to the next op, resetting per-op staging state. */
    void advance()
    {
        ++pc_;
        stall_remaining_ = -1;
        read_completed_ = false;
    }

    /**
     * Return to the start-of-run state, keeping the locals storage
     * for reuse (SimSession's run-many reset path). Equivalent to a
     * fresh CellRuntime over the same op list.
     */
    void resetRun()
    {
        pc_ = 0;
        now_ = 0;
        last_read_ = 0.0;
        next_write_ = 0.0;
        has_staged_write_ = false;
        locals_.clear(); // local(i) refills with 0.0 on demand
        stall_remaining_ = -1;
        read_completed_ = false;
        lastBlock = BlockReason::kNone;
        lastVisitCycle = 0;
    }

    /**
     * Adopt the mid-run state of @p other, a cell running the same
     * program position in another session. Part of the machine-state
     * copy behind SimSession::adoptState (the sampled-oracle
     * harness); the op list and cell id are construction-time and
     * must already match.
     */
    void copyStateFrom(const CellRuntime& other)
    {
        pc_ = other.pc_;
        now_ = other.now_;
        last_read_ = other.last_read_;
        next_write_ = other.next_write_;
        has_staged_write_ = other.has_staged_write_;
        locals_ = other.locals_;
        stall_remaining_ = other.stall_remaining_;
        read_completed_ = other.read_completed_;
        lastBlock = other.lastBlock;
        lastVisitCycle = other.lastVisitCycle;
    }

    /**
     * Serialize / restore the same mid-run state copyStateFrom moves.
     * SimArena wraps both with pool-shape checks and a whole-machine
     * digest; on a short stream loadState returns false and the cell
     * must be discarded.
     */
    void
    saveState(ByteWriter& out) const
    {
        out.put(pc_);
        out.put(now_);
        out.put(last_read_);
        out.put(next_write_);
        out.put(has_staged_write_);
        out.put(stall_remaining_);
        out.put(read_completed_);
        out.put(lastBlock);
        out.put(lastVisitCycle);
        out.putVector(locals_);
    }

    bool
    loadState(ByteReader& in)
    {
        pc_ = in.get<int>();
        now_ = in.get<Cycle>();
        last_read_ = in.get<double>();
        next_write_ = in.get<double>();
        has_staged_write_ = in.get<bool>();
        stall_remaining_ = in.get<int>();
        read_completed_ = in.get<bool>();
        lastBlock = in.get<BlockReason>();
        lastVisitCycle = in.get<Cycle>();
        return in.getVector(locals_) && pc_ >= 0 && pc_ <= num_ops_;
    }

    /**
     * Fold the kernel-independent machine state into an FNV digest:
     * program position, staged values and locals — but not the
     * visit-time bookkeeping (now_, lastBlock, lastVisitCycle), which
     * legitimately differs between the dense kernel (touches every
     * cell every cycle) and the event kernel (lets blocked cells
     * sleep) without any observable divergence.
     */
    std::uint64_t digestState(std::uint64_t h) const
    {
        h = fnv(h, static_cast<std::uint64_t>(pc_));
        h = fnvDouble(h, last_read_);
        h = fnvDouble(h, next_write_);
        h = fnv(h, has_staged_write_ ? 1 : 0);
        h = fnv(h, static_cast<std::uint64_t>(stall_remaining_));
        h = fnv(h, read_completed_ ? 1 : 0);
        h = fnv(h, locals_.size());
        for (double v : locals_)
            h = fnvDouble(h, v);
        return h;
    }

    // ------------------------------------------------------------------
    // CellContext (visible to compute callbacks)
    // ------------------------------------------------------------------

    double lastRead() const override { return last_read_; }

    void setNextWrite(double value) override
    {
        next_write_ = value;
        has_staged_write_ = true;
    }

    double& local(int index) override
    {
        if (index >= static_cast<int>(locals_.size()))
            locals_.resize(index + 1, 0.0);
        return locals_[index];
    }

    CellId cellId() const override { return id_; }
    Cycle now() const override { return now_; }

    // ------------------------------------------------------------------
    // Machine-facing helpers
    // ------------------------------------------------------------------

    void setNow(Cycle now) { now_ = now; }

    /**
     * Value the next W op sends: the explicitly staged value if any,
     * otherwise the last word read (so bare R/W pairs forward words
     * unchanged, like the X streams of Fig. 2).
     */
    double takeWriteValue()
    {
        double v = has_staged_write_ ? next_write_ : last_read_;
        has_staged_write_ = false;
        return v;
    }

    void recordRead(double value) { last_read_ = value; }

    /** Memory-to-memory staging state (see machine.cpp). */
    int stallRemaining() const { return stall_remaining_; }
    void setStallRemaining(int v) { stall_remaining_ = v; }
    bool readCompleted() const { return read_completed_; }
    void setReadCompleted(bool v) { read_completed_ = v; }

    BlockReason lastBlock = BlockReason::kNone;

    /**
     * Cycle of the cell's most recent visit by the simulation kernel.
     * The event-driven kernel uses it to settle blocked-cycle spans
     * lazily: a sleeping cell is charged (wake cycle - 1 -
     * lastVisitCycle) blocked cycles when it is next visited, exactly
     * what the dense reference kernel accumulates one cycle at a time.
     */
    Cycle lastVisitCycle = 0;

  private:
    // Field order is deliberate: everything a non-compute cell step
    // reads or writes (op cursor, clock, staged values) packs into
    // the leading cache line together with lastBlock/lastVisitCycle
    // above; the compute-only locals vector and the rarely-consulted
    // memory-to-memory staging land at the back. On dense-active
    // 100k-cell sweeps the cells pool is walked end to end every
    // cycle, so lines that never need touching are lines saved.
    const Op* ops_;
    Cycle now_ = 0;
    int num_ops_ = 0;
    int pc_ = 0;
    double last_read_ = 0.0;
    double next_write_ = 0.0;
    CellId id_;
    bool has_staged_write_ = false;
    bool read_completed_ = false;
    int stall_remaining_ = -1;
    std::vector<double> locals_;
};

} // namespace syscomm::sim
