#pragma once

/**
 * @file
 * FNV-1a folding, shared by every machine-state digest.
 *
 * The cross-kernel bit-identity checks (HwQueue/CellRuntime
 * digestState, SimArena::machineDigest, SimSession::machineDigest)
 * must all fold with the same step, or a drift in one of them would
 * silently weaken the sampled oracle's digest comparison — so the
 * step lives here exactly once.
 */

#include <cstdint>
#include <cstring>

namespace syscomm::sim {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;

/** One FNV-1a fold step. */
inline std::uint64_t
fnv(std::uint64_t h, std::uint64_t v)
{
    h ^= v;
    return h * 0x100000001b3ull;
}

/** Fold a double by bit pattern (-0.0 vs 0.0 is a real divergence). */
inline std::uint64_t
fnvDouble(std::uint64_t h, double d)
{
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof d, "double is 64-bit");
    std::memcpy(&bits, &d, sizeof bits);
    return fnv(h, bits);
}

} // namespace syscomm::sim
