#include "sim/shape_sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "serve/io.h"
#include "sim/crc32c.h"
#include "sim/fnv.h"
#include "sim/serial.h"

namespace syscomm::sim {

namespace {

// Journal framing (format v3): a fixed little-endian header naming
// the sweep configuration, then self-delimiting records — kind byte,
// record-version byte, u64 payload length, payload, and a trailing
// CRC32C over everything before it. A record torn by a crash (or a
// concurrent writer's partial flush) or bit-flipped at rest fails its
// CRC and everything from it on is ignored — the rows it would have
// carried simply re-run, which is safe because runs are
// deterministic. All scalars are fixed little-endian (sim/serial.h),
// so a journal written on any host resumes on any other.
constexpr std::uint32_t kJournalMagic = 0x4c4a5353u; // "SSJL"
// 2 added the per-request fault-plan digest and the opt-in
// programVersion tag to the config digest. 3 is the portable format:
// little-endian scalars, per-record version byte, CRC32C framing.
constexpr std::uint32_t kJournalVersion = 3;
constexpr std::uint8_t kRecVersion = 1;
constexpr std::uint8_t kRecRowDone = 1;
constexpr std::uint8_t kRecCheckpoint = 2;
/**
 * Shard-range record (written once, right after the header, only by
 * sharded runs): grid numShapes, numRequests, then the half-open
 * [shardBegin, shardEnd) cell range this journal's process owns.
 * Pre-shard readers CRC-validate and skip it — the v3 framing's
 * forward-compatibility path — so an old `inspectSweepJournal` still
 * counts a shard journal's rows; only resume (which must not mix
 * shards) rejects on mismatch.
 */
constexpr std::uint8_t kRecShardRange = 3;
/** kind + record version + payload length + trailing CRC32C. */
constexpr std::size_t kRecordOverhead = 1 + 1 + 8 + 4;
/** magic + format version + config digest. */
constexpr std::size_t kJournalHeader = 4 + 4 + 8;

std::uint64_t
fnvBytes(std::uint64_t h, const std::uint8_t* data, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        h = fnv(h, data[i]);
    return h;
}

std::uint32_t
readU32(const std::uint8_t* p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t
readU64(const std::uint8_t* p)
{
    return static_cast<std::uint64_t>(readU32(p)) |
           static_cast<std::uint64_t>(readU32(p + 4)) << 32;
}

/** Header image for a fresh journal (little-endian throughout). */
std::vector<std::uint8_t>
journalHeaderBytes(std::uint64_t cfg)
{
    std::vector<std::uint8_t> bytes;
    ByteWriter w(bytes);
    w.put(kJournalMagic);
    w.put(kJournalVersion);
    w.put(cfg);
    return bytes;
}

/** Payload of a kRecShardRange record. */
std::vector<std::uint8_t>
shardRangePayload(std::size_t num_shapes, std::size_t num_requests,
                  std::size_t begin, std::size_t end)
{
    std::vector<std::uint8_t> payload;
    ByteWriter w(payload);
    w.put(static_cast<std::uint64_t>(num_shapes));
    w.put(static_cast<std::uint64_t>(num_requests));
    w.put(static_cast<std::uint64_t>(begin));
    w.put(static_cast<std::uint64_t>(end));
    return payload;
}

/**
 * Frame one record: header + payload + CRC32C over both. Returned as
 * one buffer so the append is a single write op — exactly the
 * granularity the fault-injecting Io tears.
 */
std::vector<std::uint8_t>
frameRecord(std::uint8_t kind, const std::vector<std::uint8_t>& payload)
{
    std::vector<std::uint8_t> frame;
    frame.reserve(kRecordOverhead + payload.size());
    ByteWriter w(frame);
    w.put(kind);
    w.put(kRecVersion);
    w.put(static_cast<std::uint64_t>(payload.size()));
    frame.insert(frame.end(), payload.begin(), payload.end());
    w.put(crc32c(frame.data(), frame.size()));
    return frame;
}

/**
 * Validate the record at @p at. Returns false on a torn or corrupt
 * frame (scan must stop). On success sets @p kind, @p rec_version,
 * @p payload / @p len and @p next.
 */
bool
checkRecord(const std::vector<std::uint8_t>& bytes, std::size_t at,
            std::uint8_t& kind, std::uint8_t& rec_version,
            const std::uint8_t*& payload, std::size_t& len,
            std::size_t& next)
{
    if (bytes.size() - at < kRecordOverhead)
        return false;
    kind = bytes[at];
    rec_version = bytes[at + 1];
    const std::uint64_t n = readU64(bytes.data() + at + 2);
    if (n > bytes.size() - at - kRecordOverhead)
        return false; // torn tail
    len = static_cast<std::size_t>(n);
    payload = bytes.data() + at + 10;
    const std::uint32_t want = readU32(payload + len);
    if (crc32c(bytes.data() + at, 10 + len) != want)
        return false; // corrupt frame
    next = at + kRecordOverhead + len;
    return true;
}

std::uint64_t
fnvString(std::uint64_t h, const std::string& s)
{
    h = fnv(h, s.size());
    return fnvBytes(h, reinterpret_cast<const std::uint8_t*>(s.data()),
                    s.size());
}

/**
 * Digest of everything that defines the sweep — the program (cells,
 * messages, and every op's kind/message; compute *functions* are
 * code and cannot be hashed, the one acknowledged blind spot), the
 * topology, the session options that shape results (memory model,
 * label override; the kernel is excluded because results are
 * bit-identical across kernels by contract), the shape ladder, the
 * request batch — including each request's fault-plan digest, so a
 * faulted sweep never resumes an unfaulted journal or vice versa —
 * and the caller's opt-in programVersion tag (the escape hatch for
 * the compute-callback blind spot; see ShapeSweepOptions). A journal
 * written for any other sweep must never be resumed; run() restarts
 * the file when this digest disagrees with the header.
 */
std::uint64_t
configDigest(const Program& program, const Topology& topo,
             const SessionOptions& session,
             const std::string& program_version,
             const std::vector<ShapeSpec>& shapes,
             const std::vector<RunRequest>& requests)
{
    std::uint64_t h = kFnvOffsetBasis;
    h = fnv(h, static_cast<std::uint64_t>(program.numCells()));
    h = fnv(h, static_cast<std::uint64_t>(program.numMessages()));
    for (MessageId m = 0; m < program.numMessages(); ++m)
        h = fnv(h, static_cast<std::uint64_t>(program.messageLength(m)));
    for (CellId c = 0; c < program.numCells(); ++c) {
        const std::vector<Op>& ops = program.cellOps(c);
        h = fnv(h, ops.size());
        for (const Op& op : ops) {
            h = fnv(h, static_cast<std::uint64_t>(op.kind));
            h = fnv(h, static_cast<std::uint64_t>(op.msg));
        }
    }
    h = fnv(h, session.memoryToMemory ? 1 : 0);
    h = fnv(h, static_cast<std::uint64_t>(session.memAccessCost));
    h = fnv(h, session.labels.size());
    for (std::int64_t label : session.labels)
        h = fnv(h, static_cast<std::uint64_t>(label));
    h = fnvString(h, program_version);
    h = fnv(h, static_cast<std::uint64_t>(topo.numCells()));
    h = fnv(h, static_cast<std::uint64_t>(topo.numLinks()));
    for (LinkIndex l = 0; l < topo.numLinks(); ++l) {
        h = fnv(h, static_cast<std::uint64_t>(topo.link(l).a));
        h = fnv(h, static_cast<std::uint64_t>(topo.link(l).b));
    }
    h = fnv(h, shapes.size());
    for (const ShapeSpec& s : shapes) {
        h = fnvString(h, s.name);
        h = fnv(h, static_cast<std::uint64_t>(s.queuesPerLink));
        h = fnv(h, static_cast<std::uint64_t>(s.queueCapacity));
        h = fnv(h, static_cast<std::uint64_t>(s.extensionCapacity));
        h = fnv(h, static_cast<std::uint64_t>(s.extensionPenalty));
    }
    h = fnv(h, requests.size());
    for (const RunRequest& r : requests) {
        h = fnv(h, static_cast<std::uint64_t>(r.policy));
        h = fnv(h, r.seed);
        h = fnv(h, static_cast<std::uint64_t>(r.maxCycles));
        h = fnv(h, static_cast<std::uint64_t>(r.collect));
        h = fnv(h, static_cast<std::uint64_t>(r.pauseAt));
        // A fault plan is part of what the row computes; its digest
        // covers every event (cycle, kind, target, argument).
        h = fnv(h, r.faults != nullptr ? r.faults->digest()
                                       : std::uint64_t{0});
        h = fnv(h, r.labels.size());
        for (std::int64_t label : r.labels)
            h = fnv(h, static_cast<std::uint64_t>(label));
    }
    return h;
}

void
truncateFile(serve::Io& io, const std::string& path, std::size_t size)
{
    std::string error;
    io.truncate(path, size, error);
    // Best-effort: on failure the stranded tail costs re-computation
    // of the rows behind it, never correctness (their records are
    // simply not found and the rows re-run deterministically).
}

std::vector<std::uint8_t>
readWholeFile(serve::Io& io, const std::string& path)
{
    std::string text;
    std::string error;
    if (!io.readFile(path, text, error))
        return {};
    return {text.begin(), text.end()};
}

} // namespace

/**
 * Crash-resume journal: the rows and mid-run checkpoints loaded from
 * a previous invocation, plus the append handle the current one
 * writes through. Appends are serialized by the mutex (workers on
 * different shapes commit rows concurrently) and flushed per record
 * so a kill loses at most the record being written — which the
 * per-record digest detects on the next load.
 */
struct ShapeSweep::Journal
{
    std::mutex mutex;
    serve::Io* io = nullptr;
    serve::IoFile* file = nullptr;
    bool fsyncEveryRecord = false;
    /** Records this run() may still write; 0 = unlimited. */
    std::size_t budget = 0;
    std::size_t written = 0;
    bool stopped = false;
    /** First append/open failure: journaling degraded to off. */
    bool failed = false;
    std::string failure;

    struct Checkpoint
    {
        Cycle pauseCycle = 0;
        std::vector<std::uint8_t> bytes;
    };
    /** Grid index -> finished row replayed from a previous run. */
    std::unordered_map<std::size_t, ShapeSweepRow> done;
    /** Grid index -> latest mid-run machine checkpoint. */
    std::unordered_map<std::size_t, Checkpoint> checkpoints;

    ~Journal()
    {
        if (file != nullptr)
            io->close(file);
    }

    /**
     * Append one record; returns false once the record budget is
     * exhausted (the record that hit the limit is still written, so
     * a resume finds it). An IO *failure* does not return false —
     * stopping the sweep would turn a disk problem into lost compute.
     * Instead journaling latches off (failed/failure, surfaced as
     * ShapeSweepResult::journalError) and the sweep runs on; the rows
     * a crash would now lose simply recompute on the next resume.
     */
    bool
    append(std::uint8_t kind, const std::vector<std::uint8_t>& payload)
    {
        // The CRC walk can cover a multi-MB checkpoint; frame before
        // taking the mutex so it never stalls other workers' row
        // commits.
        const std::vector<std::uint8_t> frame =
            frameRecord(kind, payload);
        std::lock_guard<std::mutex> lock(mutex);
        if (stopped)
            return false;
        if (failed)
            return true;
        std::string error;
        if (!io->write(file, frame.data(), frame.size(), error) ||
            !io->flush(file, error) ||
            (fsyncEveryRecord && !io->sync(file, error))) {
            failed = true;
            failure = error;
            return true;
        }
        ++written;
        if (budget > 0 && written >= budget)
            stopped = true;
        return !stopped;
    }

    /**
     * Parse a journal image. Returns false when the header does not
     * name this exact sweep, or when the journal's shard-range record
     * disagrees with this run's shard (a sharded journal must never
     * resume an unsharded run, a different shard, or a different
     * grid — then the caller restarts the file). Record parsing
     * stops at the first torn or corrupt record — everything before
     * it is still replayed, and @p valid_prefix reports how many
     * leading bytes were sound so the caller can truncate the tail
     * away before appending (appending *after* garbage would strand
     * every later record behind it on the next load).
     */
    bool
    load(const std::vector<std::uint8_t>& bytes, std::uint64_t cfg,
         std::size_t num_shapes, std::size_t num_requests,
         bool sharded, std::size_t shard_begin, std::size_t shard_end,
         std::size_t& valid_prefix)
    {
        valid_prefix = 0;
        if (bytes.size() < kJournalHeader)
            return false;
        if (readU32(bytes.data()) != kJournalMagic ||
            readU32(bytes.data() + 4) != kJournalVersion ||
            readU64(bytes.data() + 8) != cfg)
            return false;
        valid_prefix = kJournalHeader;

        bool sawShard = false;
        std::size_t at = kJournalHeader;
        std::uint8_t kind;
        std::uint8_t recVersion;
        const std::uint8_t* payload;
        std::size_t len;
        std::size_t next;
        while (checkRecord(bytes, at, kind, recVersion, payload, len,
                           next)) {
            // A CRC-valid frame of an unknown record version or kind
            // skips harmlessly: forward compatibility.
            ByteReader r(payload, len);
            if (kind == kRecShardRange && recVersion == kRecVersion) {
                const auto jShapes = r.get<std::uint64_t>();
                const auto jRequests = r.get<std::uint64_t>();
                const auto jBegin = r.get<std::uint64_t>();
                const auto jEnd = r.get<std::uint64_t>();
                if (!r.ok() || !sharded || jShapes != num_shapes ||
                    jRequests != num_requests || jBegin != shard_begin ||
                    jEnd != shard_end)
                    return false;
                sawShard = true;
                at = next;
                valid_prefix = at;
                continue;
            }
            const auto shape = r.get<std::uint64_t>();
            const auto request = r.get<std::uint64_t>();
            const bool inGrid = recVersion == kRecVersion && r.ok() &&
                                shape < num_shapes &&
                                request < num_requests;
            const std::size_t idx =
                static_cast<std::size_t>(shape) * num_requests +
                static_cast<std::size_t>(request);
            if (kind == kRecRowDone && recVersion == kRecVersion) {
                ShapeSweepRow row;
                row.shape = static_cast<std::size_t>(shape);
                row.request = static_cast<std::size_t>(request);
                row.machineDigest = r.get<std::uint64_t>();
                if (!loadRunResult(r, row.result))
                    break;
                if (inGrid) {
                    row.fromJournal = true;
                    row.finished = true;
                    done[idx] = std::move(row);
                    checkpoints.erase(idx);
                }
            } else if (kind == kRecCheckpoint &&
                       recVersion == kRecVersion) {
                Checkpoint ck;
                ck.pauseCycle = r.get<Cycle>();
                if (!r.getVector(ck.bytes))
                    break;
                if (inGrid && done.find(idx) == done.end())
                    checkpoints[idx] = std::move(ck); // latest wins
            }
            at = next;
            valid_prefix = at;
        }
        // A sharded run must find its own shard record (an unsharded
        // journal for the same sweep is a different file's worth of
        // rows — restart rather than adopt it).
        return !sharded || sawShard;
    }
};

/**
 * A bounded pool of sessions over one shape. Work-stealing hands out
 * (shape × request) cells, so several workers can land on the same
 * shape at once; each checks a session out per cell (building one
 * lazily while under the bound, blocking for a peer's check-in at
 * it). SimSession::run() fully resets machine state, so *which*
 * pooled session a cell gets cannot affect its result — the
 * bit-identity suite runs the same grid at 1 and N workers and
 * compares digests. Sessions persist in `idle` across run() calls:
 * the compile-once/run-many caching the sweep always had, just N-wide.
 */
struct ShapeSweep::ShapePool
{
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<std::unique_ptr<SimSession>> idle;
    /** Sessions ever built; construction is gated by the bound. */
    int built = 0;

    template <typename Make>
    std::unique_ptr<SimSession>
    checkout(int bound, Make&& make)
    {
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
            if (!idle.empty()) {
                std::unique_ptr<SimSession> s = std::move(idle.back());
                idle.pop_back();
                return s;
            }
            if (built < bound) {
                ++built;
                lock.unlock();
                // Construct outside the lock — building a session
                // over a big machine allocates arenas and must not
                // stall peers returning theirs.
                try {
                    return make();
                } catch (...) {
                    lock.lock();
                    --built;
                    lock.unlock();
                    cv.notify_one();
                    throw;
                }
            }
            cv.wait(lock);
        }
    }

    void
    checkin(std::unique_ptr<SimSession> s)
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            idle.push_back(std::move(s));
        }
        cv.notify_one();
    }
};

ShapeSweep::ShapeSweep(const Program& program, SharedTopology topo,
                       std::vector<ShapeSpec> shapes,
                       ShapeSweepOptions options)
    : program_(program),
      topo_(std::move(topo)),
      shapes_(std::move(shapes)),
      options_(std::move(options))
{
    specs_.reserve(shapes_.size());
    for (const ShapeSpec& shape : shapes_) {
        MachineSpec spec;
        spec.topo = topo_;
        spec.queuesPerLink = shape.queuesPerLink;
        spec.queueCapacity = shape.queueCapacity;
        spec.extensionCapacity = shape.extensionCapacity;
        spec.extensionPenalty = shape.extensionPenalty;
        specs_.push_back(std::move(spec));
    }
    pools_.reserve(shapes_.size());
    for (std::size_t s = 0; s < shapes_.size(); ++s)
        pools_.push_back(std::make_unique<ShapePool>());
}

ShapeSweep::ShapeSweep(std::shared_ptr<const CompiledProgram> compiled,
                       std::vector<ShapeSpec> shapes,
                       ShapeSweepOptions options)
    : ShapeSweep(compiled->program(), compiled->sharedTopo(),
                 std::move(shapes), std::move(options))
{
    compiled_ = std::move(compiled);
}

ShapeSweep::~ShapeSweep() = default;

ShapeSweepResult
ShapeSweep::run(const std::vector<RunRequest>& requests)
{
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();

    ShapeSweepResult out;
    out.numShapes = shapes_.size();
    out.numRequests = requests.size();
    out.requests = requests;
    out.rows.resize(shapes_.size() * requests.size());
    for (std::size_t s = 0; s < shapes_.size(); ++s) {
        for (std::size_t r = 0; r < requests.size(); ++r) {
            out.rows[s * requests.size() + r].shape = s;
            out.rows[s * requests.size() + r].request = r;
        }
    }

    // The whole point: one compile pass serves every shape.
    if (!compiled_) {
        compiled_ = CompiledProgram::compile(
            program_, topo_, options_.session.labels,
            options_.session.precomputeLabels);
    }

    // Multi-process sharding: this run owns the half-open cell range
    // [shardBegin, shardEnd) of the shape-major grid; an unsharded
    // run owns all of it.
    const std::size_t totalCells = shapes_.size() * requests.size();
    const bool sharded = options_.shardEnd > options_.shardBegin;
    const std::size_t shardBegin =
        sharded ? std::min(options_.shardBegin, totalCells) : 0;
    const std::size_t shardEnd =
        sharded ? std::min(options_.shardEnd, totalCells) : totalCells;
    out.sharded = sharded;
    out.shardBegin = shardBegin;
    out.shardEnd = shardEnd;

    std::unique_ptr<Journal> journal;
    std::string journalOpenError;
    if (!options_.journalPath.empty() && !requests.empty()) {
        journal = std::make_unique<Journal>();
        journal->io = options_.io != nullptr ? options_.io
                                             : &serve::Io::system();
        journal->fsyncEveryRecord = options_.fsyncEveryRecord;
        journal->budget = options_.stopAfterJournalRecords;
        serve::Io& io = *journal->io;
        const std::uint64_t cfg = configDigest(
            program_, topo_, options_.session, options_.programVersion,
            shapes_, requests);
        const std::vector<std::uint8_t> bytes =
            readWholeFile(io, options_.journalPath);
        std::size_t validPrefix = 0;
        if (!bytes.empty() &&
            journal->load(bytes, cfg, shapes_.size(), requests.size(),
                          sharded, shardBegin, shardEnd,
                          validPrefix)) {
            // A kill mid-append leaves a torn record; cut it off
            // before appending, or every record this run writes
            // would sit behind garbage and be unreachable on the
            // next load.
            if (validPrefix < bytes.size())
                truncateFile(io, options_.journalPath, validPrefix);
            journal->file = io.openWrite(options_.journalPath,
                                         /*append=*/true,
                                         journalOpenError);
        } else {
            // Fresh sweep (or a journal for some other sweep):
            // restart the file with this sweep's header.
            journal->done.clear();
            journal->checkpoints.clear();
            journal->file = io.openWrite(options_.journalPath,
                                         /*append=*/false,
                                         journalOpenError);
            if (journal->file != nullptr) {
                std::vector<std::uint8_t> header =
                    journalHeaderBytes(cfg);
                if (sharded) {
                    // The shard record rides the header write: it is
                    // part of what names this journal, not a row, so
                    // it never consumes the record budget and is
                    // present from the first byte of a shard file.
                    const std::vector<std::uint8_t> rec = frameRecord(
                        kRecShardRange,
                        shardRangePayload(shapes_.size(),
                                          requests.size(), shardBegin,
                                          shardEnd));
                    header.insert(header.end(), rec.begin(),
                                  rec.end());
                }
                if (!io.write(journal->file, header.data(),
                              header.size(), journalOpenError) ||
                    !io.flush(journal->file, journalOpenError)) {
                    io.close(journal->file);
                    journal->file = nullptr;
                }
            }
        }
        if (journal->file == nullptr) {
            // Unwritable path or failed header write: sweep without
            // resume, surfaced below as journalError.
            journal.reset();
            out.journalError = true;
            out.journalErrorText = journalOpenError.empty()
                                       ? "journal open failed"
                                       : journalOpenError;
        }
    }

    if (journal) {
        for (auto& [idx, row] : journal->done) {
            out.rows[idx] = std::move(row);
            ++out.rowsFromJournal;
        }
    }

    // Work items are (shape × request) grid cells — the finest unit
    // that preserves per-run determinism — restricted to this
    // shard's range; cells satisfied by the journal dispatch
    // nothing. Cell granularity is what fixes the inverted scaling
    // curve: under the old whole-shape dispatch a ladder with one
    // giant rung parked every other worker behind the thread that
    // claimed it.
    std::vector<std::size_t> work;
    for (std::size_t idx = shardBegin; idx < shardEnd; ++idx) {
        if (!out.rows[idx].finished)
            work.push_back(idx);
    }
    // The legacy scheduler claims whole shapes; kept only so the
    // bit-identity suite can prove cell-granular == shape-granular.
    std::vector<std::size_t> shapeWork;
    if (options_.shapeGranularDispatch && !requests.empty()) {
        for (std::size_t idx : work) {
            const std::size_t s = idx / requests.size();
            if (shapeWork.empty() || shapeWork.back() != s)
                shapeWork.push_back(s);
        }
    }
    const std::size_t numItems = options_.shapeGranularDispatch
                                     ? shapeWork.size()
                                     : work.size();

    const int workers = clampWorkers(options_.numWorkers, numItems);
    // Sessions checked out per cell, at most this many live per
    // shape. More than one per worker can never run concurrently.
    int sessionBound = options_.maxSessionsPerShape > 0
                           ? options_.maxSessionsPerShape
                           : workers;
    sessionBound = std::min(sessionBound, workers);
    if (sessionBound < 1)
        sessionBound = 1;

    std::atomic<std::size_t> restored{0};
    std::atomic<bool> stop{false};
    const std::atomic<bool>* externalStop = options_.stopFlag;
    auto stopRequested = [&] {
        return stop.load(std::memory_order_relaxed) ||
               (externalStop != nullptr &&
                externalStop->load(std::memory_order_relaxed));
    };

    // One grid cell, start to finish, on whatever worker stole it. A
    // session is checked out of the shape's pool for the duration
    // (RAII check-in, exception-safe); SimSession::run() resets all
    // machine state, so the cell's result is independent of which
    // pooled instance it got.
    auto runCell = [&](std::size_t idx) {
        if (stopRequested())
            return;
        const std::size_t s = idx / requests.size();
        const std::size_t r = idx % requests.size();
        ShapeSweepRow& row = out.rows[idx];
        if (row.finished)
            return;
        ShapePool& shapePool = *pools_[s];
        struct Lease
        {
            ShapePool& pool;
            std::unique_ptr<SimSession> session;
            ~Lease()
            {
                if (session)
                    pool.checkin(std::move(session));
            }
        } lease{shapePool,
                shapePool.checkout(sessionBound, [&] {
                    return std::make_unique<SimSession>(
                        compiled_, specs_[s], options_.session);
                })};
        SimSession& session = *lease.session;
        const RunRequest& request = requests[r];
        // Only stats-only rows are journaled/checkpointed; rows
        // materializing result vectors simply re-run on resume
        // (equally bit-identical, just not incremental). An
        // attached RunObserver disqualifies a row the same way:
        // a journal-replayed row executes nothing, so its
        // callbacks would silently never fire.
        const bool journalRow = journal != nullptr &&
                                request.collect == Collect::kNone &&
                                request.observer == nullptr &&
                                request.pauseAt == 0;
        RunResult res;
        if (journalRow && options_.checkpointEvery > 0) {
            const Cycle every = options_.checkpointEvery;
            auto ck = journal->checkpoints.find(idx);
            if (ck != journal->checkpoints.end() &&
                session.restoreCheckpoint(request, ck->second.bytes)) {
                ++restored;
                res = session.resume(ck->second.pauseCycle + every);
            } else {
                // No checkpoint (or a stale/corrupt one the
                // session rejected): run from the start.
                RunRequest first = request;
                first.pauseAt = every;
                res = session.run(first);
            }
            while (res.status == RunStatus::kPaused) {
                // Serialize the machine state straight into the
                // record payload (length patched in afterwards)
                // — a checkpoint can be tens of MB on large
                // machines and does not want an extra copy.
                std::vector<std::uint8_t> payload;
                ByteWriter w(payload);
                w.put(static_cast<std::uint64_t>(s));
                w.put(static_cast<std::uint64_t>(r));
                w.put(res.cycles);
                const std::size_t lenAt = payload.size();
                w.put(std::uint64_t{0});
                if (session.saveCheckpoint(payload)) {
                    const std::uint64_t stateLen =
                        payload.size() - lenAt - sizeof stateLen;
                    // Patch the length in little-endian to match
                    // the getVector that reads it back.
                    for (std::size_t b = 0; b < sizeof stateLen; ++b)
                        payload[lenAt + b] =
                            static_cast<std::uint8_t>(stateLen >>
                                                      (8 * b));
                    if (!journal->append(kRecCheckpoint, payload)) {
                        // Budget exhausted mid-run: the row is
                        // checkpointed; the resume picks it up.
                        stop.store(true, std::memory_order_relaxed);
                        return;
                    }
                    // A drain parks here: the checkpoint just
                    // appended is the state the resume restores.
                    if (stopRequested())
                        return;
                }
                res = session.resume(res.cycles + every);
            }
        } else {
            res = session.run(request);
        }
        row.result = std::move(res);
        row.machineDigest = session.machineDigest();
        row.finished = true;
        if (journalRow) {
            std::vector<std::uint8_t> payload;
            ByteWriter w(payload);
            w.put(static_cast<std::uint64_t>(s));
            w.put(static_cast<std::uint64_t>(r));
            w.put(row.machineDigest);
            saveRunResult(w, row.result);
            if (!journal->append(kRecRowDone, payload)) {
                stop.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    if (options_.shapeGranularDispatch) {
        auto job = [&](int, std::size_t workIdx) {
            const std::size_t s = shapeWork[workIdx];
            for (std::size_t r = 0; r < requests.size(); ++r) {
                const std::size_t idx = s * requests.size() + r;
                if (idx < shardBegin || idx >= shardEnd)
                    continue;
                if (stopRequested())
                    return;
                runCell(idx);
            }
        };
        pool_.dispatch(workers, shapeWork.size(), job);
    } else {
        auto job = [&](int, std::size_t workIdx) {
            runCell(work[workIdx]);
        };
        pool_.dispatch(workers, work.size(), job);
    }

    if (journal && journal->failed) {
        out.journalError = true;
        out.journalErrorText = journal->failure;
    }
    out.checkpointsRestored = restored.load();
    out.complete = true;
    for (std::size_t idx = shardBegin; idx < shardEnd; ++idx) {
        if (!out.rows[idx].finished) {
            out.complete = false;
            break;
        }
    }
    out.workersUsed = workers;
    out.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return out;
}

bool
inspectSweepJournal(const std::string& path, SweepJournalInfo& out)
{
    out = SweepJournalInfo{};
    const std::vector<std::uint8_t> bytes =
        readWholeFile(serve::Io::system(), path);
    if (bytes.size() < kJournalHeader)
        return false;
    if (readU32(bytes.data()) != kJournalMagic ||
        readU32(bytes.data() + 4) != kJournalVersion)
        return false;
    out.configDigest = readU64(bytes.data() + 8);

    // The same walk Journal::load does, minus the grid bounds (the
    // inspector does not know the sweep's dimensions) and minus the
    // config check (it reports on journals for *any* sweep). Torn or
    // corrupt records stop the scan, so the progress reported is
    // exactly what a resume would replay.
    std::map<std::pair<std::size_t, std::size_t>, CheckpointInfo> live;
    std::size_t at = kJournalHeader;
    std::uint8_t kind;
    std::uint8_t recVersion;
    const std::uint8_t* payload;
    std::size_t len;
    std::size_t next;
    while (checkRecord(bytes, at, kind, recVersion, payload, len,
                       next)) {
        ByteReader r(payload, len);
        if (kind == kRecShardRange && recVersion == kRecVersion) {
            const auto jShapes = r.get<std::uint64_t>();
            const auto jRequests = r.get<std::uint64_t>();
            const auto jBegin = r.get<std::uint64_t>();
            const auto jEnd = r.get<std::uint64_t>();
            if (r.ok()) {
                out.sharded = true;
                out.numShapes = static_cast<std::size_t>(jShapes);
                out.numRequests = static_cast<std::size_t>(jRequests);
                out.shardBegin = static_cast<std::size_t>(jBegin);
                out.shardEnd = static_cast<std::size_t>(jEnd);
            }
            at = next;
            continue;
        }
        const auto shape =
            static_cast<std::size_t>(r.get<std::uint64_t>());
        const auto request =
            static_cast<std::size_t>(r.get<std::uint64_t>());
        if (kind == kRecRowDone && recVersion == kRecVersion) {
            if (r.ok()) {
                ++out.rowsDone;
                live.erase({shape, request});
            }
        } else if (kind == kRecCheckpoint &&
                   recVersion == kRecVersion) {
            r.get<Cycle>(); // pause cycle (also in the header below)
            const auto stateLen = r.get<std::uint64_t>();
            CheckpointInfo info;
            if (r.ok() && stateLen <= r.remaining() &&
                peekCheckpointInfo(payload + (len - r.remaining()),
                                   static_cast<std::size_t>(stateLen),
                                   info)) {
                live[{shape, request}] = std::move(info);
            }
        }
        at = next;
    }
    out.inflight.reserve(live.size());
    for (auto& [key, info] : live) {
        SweepJournalRow row;
        row.shape = key.first;
        row.request = key.second;
        row.info = std::move(info);
        out.inflight.push_back(std::move(row));
    }
    return true;
}

bool
mergeSweepJournals(const std::vector<std::string>& paths,
                   SweepMergeResult& out, std::string& error)
{
    out = SweepMergeResult{};
    error.clear();
    if (paths.empty()) {
        error = "no journals to merge";
        return false;
    }

    bool haveCfg = false;
    std::map<std::pair<std::size_t, std::size_t>, SweepMergeRow> rows;
    for (const std::string& path : paths) {
        const std::vector<std::uint8_t> bytes =
            readWholeFile(serve::Io::system(), path);
        if (bytes.size() < kJournalHeader ||
            readU32(bytes.data()) != kJournalMagic ||
            readU32(bytes.data() + 4) != kJournalVersion) {
            error = path + ": not a v3 sweep journal";
            return false;
        }
        const std::uint64_t cfg = readU64(bytes.data() + 8);
        if (!haveCfg) {
            out.configDigest = cfg;
            haveCfg = true;
        } else if (cfg != out.configDigest) {
            error = path +
                    ": config digest mismatch — the journals "
                    "describe different sweeps";
            return false;
        }

        // Same tolerant walk as a resume: torn/corrupt tails stop
        // this file's scan (its missing rows simply are not merged),
        // unknown kinds skip.
        std::size_t at = kJournalHeader;
        std::uint8_t kind;
        std::uint8_t recVersion;
        const std::uint8_t* payload;
        std::size_t len;
        std::size_t next;
        while (checkRecord(bytes, at, kind, recVersion, payload, len,
                           next)) {
            ByteReader r(payload, len);
            if (kind == kRecShardRange && recVersion == kRecVersion) {
                const auto jShapes = r.get<std::uint64_t>();
                const auto jRequests = r.get<std::uint64_t>();
                r.get<std::uint64_t>(); // shardBegin (informational)
                r.get<std::uint64_t>(); // shardEnd
                if (r.ok()) {
                    if (out.numShapes != 0 &&
                        (out.numShapes != jShapes ||
                         out.numRequests != jRequests)) {
                        error = path +
                                ": shard-range grid dimensions "
                                "disagree with an earlier journal";
                        return false;
                    }
                    out.numShapes =
                        static_cast<std::size_t>(jShapes);
                    out.numRequests =
                        static_cast<std::size_t>(jRequests);
                }
            } else if (kind == kRecRowDone &&
                       recVersion == kRecVersion) {
                SweepMergeRow row;
                row.shape =
                    static_cast<std::size_t>(r.get<std::uint64_t>());
                row.request =
                    static_cast<std::size_t>(r.get<std::uint64_t>());
                row.machineDigest = r.get<std::uint64_t>();
                if (!loadRunResult(r, row.result) || !r.ok())
                    break;
                const auto key = std::make_pair(row.shape, row.request);
                auto it = rows.find(key);
                if (it == rows.end()) {
                    rows.emplace(key, std::move(row));
                } else {
                    // The per-rung cross-check: overlapping shards
                    // must agree bit-for-bit — a disagreement is a
                    // determinism violation, never silently resolved.
                    if (it->second.machineDigest != row.machineDigest ||
                        it->second.result.status != row.result.status ||
                        it->second.result.cycles != row.result.cycles) {
                        error = path + ": row (" +
                                std::to_string(row.shape) + ", " +
                                std::to_string(row.request) +
                                ") disagrees with another journal "
                                "(machine digest or result differs)";
                        return false;
                    }
                    ++it->second.sources;
                    ++out.duplicateRows;
                }
            }
            // kRecCheckpoint (in-flight state) and unknown kinds are
            // not merge material.
            at = next;
        }
    }

    out.rows.reserve(rows.size());
    std::size_t maxShape = 0;
    for (auto& [key, row] : rows) {
        maxShape = std::max(maxShape, row.shape);
        out.rows.push_back(std::move(row));
    }
    if (out.numShapes != 0 && out.numRequests != 0) {
        for (const SweepMergeRow& row : out.rows) {
            if (row.shape >= out.numShapes ||
                row.request >= out.numRequests) {
                error = "row (" + std::to_string(row.shape) + ", " +
                        std::to_string(row.request) +
                        ") lies outside the recorded " +
                        std::to_string(out.numShapes) + "x" +
                        std::to_string(out.numRequests) + " grid";
                return false;
            }
        }
        out.complete =
            out.rows.size() == out.numShapes * out.numRequests;
    }

    const std::size_t numDigests =
        out.numShapes != 0 ? out.numShapes
        : out.rows.empty() ? 0
                           : maxShape + 1;
    out.shapeDigests.assign(numDigests, kFnvOffsetBasis);
    // Rows are in grid order already (map iteration), so each rung's
    // fold sees its digests in request order — the same fold over an
    // unsharded run's rows compares equal iff the sharded sweep is
    // bit-identical to it.
    for (const SweepMergeRow& row : out.rows) {
        out.shapeDigests[row.shape] =
            fnv(out.shapeDigests[row.shape], row.machineDigest);
    }
    return true;
}

SweepSummary
ShapeSweepResult::shapeSummary(std::size_t shape) const
{
    // Unfinished rows (a stopped partial sweep) are excluded rather
    // than reported as fabricated config errors.
    std::vector<RunResult> results;
    std::vector<RunRequest> reqs;
    results.reserve(numRequests);
    reqs.reserve(numRequests);
    for (std::size_t r = 0; r < numRequests; ++r) {
        const ShapeSweepRow& shapeRow = row(shape, r);
        if (!shapeRow.finished)
            continue;
        results.push_back(shapeRow.result);
        reqs.push_back(requests[r]);
    }
    return summarizeSweep(std::move(results), reqs);
}

std::string
ShapeSweepResult::str(const std::vector<ShapeSpec>& shapes) const
{
    std::ostringstream os;
    os << "shape sweep: " << numShapes << " shapes x " << numRequests
       << " requests on " << workersUsed << " worker(s) in "
       << wallSeconds << "s";
    if (rowsFromJournal > 0 || checkpointsRestored > 0) {
        os << " (resumed: " << rowsFromJournal << " rows, "
           << checkpointsRestored << " checkpoints)";
    }
    if (!complete)
        os << " [partial]";
    os << "\n";
    for (std::size_t s = 0; s < numShapes; ++s) {
        SweepSummary summary = shapeSummary(s);
        os << "  "
           << (s < shapes.size() ? shapes[s].name
                                 : "#" + std::to_string(s))
           << ": ";
        for (int st = 0; st < kNumRunStatuses; ++st) {
            if (st > 0)
                os << ", ";
            os << runStatusName(static_cast<RunStatus>(st)) << " "
               << summary.statusCounts[st];
        }
        os << "; p50 " << summary.p50Cycles << " max "
           << summary.maxCycles << "\n";
    }
    return os.str();
}

} // namespace syscomm::sim
