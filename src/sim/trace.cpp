#include "sim/trace.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "core/competing.h"

namespace syscomm::sim {

std::string
renderQueueTimeline(const RunResult& result, const Program& program,
                    const MachineSpec& spec, int max_width)
{
    Cycle span = std::max<Cycle>(result.cycles, 1);
    Cycle step = std::max<Cycle>(1, (span + max_width - 1) / max_width);
    int columns = static_cast<int>((span + step - 1) / step);

    // Occupancy per (link, queue): fill assignment intervals.
    std::map<std::pair<LinkIndex, int>, std::string> rows;
    for (LinkIndex l = 0; l < spec.topo.numLinks(); ++l) {
        for (int q = 0; q < spec.queuesPerLink; ++q)
            rows[{l, q}] = std::string(columns, '.');
    }
    // Match assignments with releases per (link, queue) in time order.
    std::map<std::pair<LinkIndex, int>, std::vector<const AssignmentEvent*>>
        assigns, releases;
    for (const AssignmentEvent& ev : result.events)
        assigns[{ev.link, ev.queueId}].push_back(&ev);
    for (const AssignmentEvent& ev : result.releases)
        releases[{ev.link, ev.queueId}].push_back(&ev);

    for (auto& [key, list] : assigns) {
        const auto& rel = releases[key];
        for (std::size_t i = 0; i < list.size(); ++i) {
            Cycle from = list[i]->cycle;
            Cycle to = i < rel.size() ? rel[i]->cycle : span;
            char letter = program.message(list[i]->msg).name[0];
            for (Cycle t = from; t <= to && t <= span; t += 1) {
                int col = static_cast<int>(t / step);
                if (col >= columns)
                    col = columns - 1;
                rows[key][col] = letter;
            }
        }
    }

    std::ostringstream os;
    os << "queue occupancy (1 column ~ " << step << " cycle"
       << (step > 1 ? "s" : "") << ", '.' = free)\n";
    for (const auto& [key, text] : rows) {
        const Link& link = spec.topo.link(key.first);
        os << "link " << link.a << "-" << link.b << " q" << key.second
           << ": " << text << "\n";
    }
    return os.str();
}

std::string
renderMessageLatencies(const RunResult& result, const Program& program)
{
    std::ostringstream os;
    os << "message   first-sent  last-recv   span\n";
    for (MessageId m = 0; m < program.numMessages(); ++m) {
        auto [sent, received] = result.msgTiming[m];
        os << program.message(m).name;
        for (std::size_t pad = program.message(m).name.size(); pad < 10;
             ++pad) {
            os << ' ';
        }
        if (sent < 0) {
            os << "(never sent)\n";
            continue;
        }
        os << sent << "\t    " << received << "\t"
           << (received >= sent ? received - sent : -1) << "\n";
    }
    return os.str();
}

Cycle
idealCycles(const Program& program, const Topology& topo)
{
    auto analysis = CompetingAnalysis::analyze(program, topo);
    std::int64_t total_words = 0;
    for (MessageId m = 0; m < program.numMessages(); ++m)
        total_words += program.messageLength(m);

    MachineSpec spec;
    spec.topo = topo;
    spec.queuesPerLink = std::max(1, analysis.maxOnLink());
    spec.queueCapacity =
        std::max<int>(1, static_cast<int>(std::min<std::int64_t>(
                             total_words, 1 << 20)));
    // Stats-only session run: idealCycles only needs the cycle count,
    // and the static policy never needs labels — skip the labeler.
    SessionOptions options;
    options.precomputeLabels = false;
    SimSession session(program, spec, options);
    RunRequest request;
    request.policy = PolicyKind::kStatic;
    RunResult r = session.run(request);
    return r.status == RunStatus::kCompleted ? r.cycles : -1;
}

} // namespace syscomm::sim
