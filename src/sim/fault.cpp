#include "sim/fault.h"

#include <algorithm>

#include "core/mix.h"
#include "sim/fnv.h"

namespace syscomm::sim {

const char*
faultKindName(FaultKind k)
{
    switch (k) {
    case FaultKind::kKillLink:
        return "kill-link";
    case FaultKind::kKillCell:
        return "kill-cell";
    case FaultKind::kDegradeQueue:
        return "degrade-queue";
    case FaultKind::kStallLink:
        return "stall-link";
    }
    return "?";
}

std::string
FaultEvent::describe() const
{
    std::string s = "cycle " + std::to_string(cycle) + ": " +
                    faultKindName(kind);
    switch (kind) {
    case FaultKind::kKillLink:
        s += " L" + std::to_string(link);
        break;
    case FaultKind::kKillCell:
        s += " cell " + std::to_string(cell);
        break;
    case FaultKind::kDegradeQueue:
        s += " L" + std::to_string(link) + " q" + std::to_string(queue) +
             " -> cap " + std::to_string(arg);
        break;
    case FaultKind::kStallLink:
        s += " L" + std::to_string(link) + " for " + std::to_string(arg) +
             " cycles";
        break;
    }
    return s;
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events)
    : events_(std::move(events))
{
    // Stable: same-cycle events keep their given order, so application
    // order — and therefore the machine state — is fully determined by
    // the plan's contents.
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& x, const FaultEvent& y) {
                         return x.cycle < y.cycle;
                     });
}

void
FaultPlan::add(const FaultEvent& e)
{
    auto it = std::upper_bound(events_.begin(), events_.end(), e,
                               [](const FaultEvent& x, const FaultEvent& y) {
                                   return x.cycle < y.cycle;
                               });
    events_.insert(it, e);
}

std::string
FaultPlan::validate(const Topology& topo, const MachineSpec& spec) const
{
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const FaultEvent& e = events_[i];
        std::string where = "fault event " + std::to_string(i) + " (" +
                            e.describe() + "): ";
        if (e.cycle < 0)
            return where + "negative cycle";
        bool needs_link = e.kind != FaultKind::kKillCell;
        if (needs_link && (e.link < 0 || e.link >= topo.numLinks()))
            return where + "link out of range";
        switch (e.kind) {
        case FaultKind::kKillLink:
            break;
        case FaultKind::kKillCell:
            if (e.cell < 0 || e.cell >= topo.numCells())
                return where + "cell out of range";
            break;
        case FaultKind::kDegradeQueue:
            if (e.queue < 0 || e.queue >= spec.queuesPerLink)
                return where + "queue out of range";
            if (e.arg < 1)
                return where + "degraded capacity must be >= 1";
            break;
        case FaultKind::kStallLink:
            if (e.arg < 1)
                return where + "stall length must be >= 1";
            break;
        }
    }
    return "";
}

std::uint64_t
FaultPlan::digest() const
{
    std::uint64_t h = kFnvOffsetBasis;
    h = fnv(h, events_.size());
    for (const FaultEvent& e : events_) {
        h = fnv(h, static_cast<std::uint64_t>(e.cycle));
        h = fnv(h, static_cast<std::uint64_t>(e.kind));
        h = fnv(h, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(e.link)));
        h = fnv(h, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(e.cell)));
        h = fnv(h, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(e.queue)));
        h = fnv(h, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(e.arg)));
    }
    return h;
}

FaultPlan
randomFaultPlan(const Topology& topo, const MachineSpec& spec,
                const FaultPlanOptions& options)
{
    std::vector<FaultKind> kinds;
    if (options.killLinks)
        kinds.push_back(FaultKind::kKillLink);
    if (options.killCells)
        kinds.push_back(FaultKind::kKillCell);
    if (options.degradeQueues)
        kinds.push_back(FaultKind::kDegradeQueue);
    if (options.stallLinks)
        kinds.push_back(FaultKind::kStallLink);

    std::vector<FaultEvent> events;
    if (kinds.empty() || topo.numLinks() == 0 || options.numEvents <= 0)
        return FaultPlan(std::move(events));

    std::uint64_t state = mix64(options.seed ^ 0xfa417ull);
    Cycle span = options.maxCycle > 0 ? options.maxCycle : 1;
    int total_cap = spec.queueCapacity + spec.extensionCapacity;
    if (total_cap < 1)
        total_cap = 1;
    for (int i = 0; i < options.numEvents; ++i) {
        FaultEvent e;
        e.cycle = 1 + static_cast<Cycle>(splitmix64(state) %
                                         static_cast<std::uint64_t>(span));
        e.kind = kinds[splitmix64(state) % kinds.size()];
        e.link = static_cast<LinkIndex>(
            splitmix64(state) % static_cast<std::uint64_t>(topo.numLinks()));
        switch (e.kind) {
        case FaultKind::kKillLink:
            break;
        case FaultKind::kKillCell:
            e.cell = static_cast<CellId>(
                splitmix64(state) %
                static_cast<std::uint64_t>(topo.numCells()));
            break;
        case FaultKind::kDegradeQueue:
            e.queue = static_cast<int>(
                splitmix64(state) %
                static_cast<std::uint64_t>(spec.queuesPerLink));
            e.arg = 1 + static_cast<int>(
                            splitmix64(state) %
                            static_cast<std::uint64_t>(total_cap));
            break;
        case FaultKind::kStallLink:
            e.arg = 1 + static_cast<int>(
                            splitmix64(state) %
                            static_cast<std::uint64_t>(
                                options.maxStall > 0 ? options.maxStall
                                                     : 1));
            break;
        }
        events.push_back(e);
    }
    return FaultPlan(std::move(events));
}

} // namespace syscomm::sim
