#pragma once

/**
 * @file
 * Queue-assignment policies (paper, section 7).
 *
 * The policy decides, each cycle and per link, which waiting messages
 * receive free queues. Four policies are provided:
 *
 *  - StaticPolicy: every message gets a dedicated queue before the
 *    program starts (section 7.1). Automatically compatible.
 *  - CompatiblePolicy: the paper's dynamic scheme — ordered assignment
 *    by label plus simultaneous assignment of same-label groups
 *    (section 7.2). Requires a labeling.
 *  - FcfsPolicy: first-come-first-served baseline. Exhibits the
 *    queue-induced deadlocks of Figs. 7-9.
 *  - RandomPolicy: randomized arrival service; another unsafe baseline.
 */

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "sim/link_state.h"

namespace syscomm::sim {

/** (message, queue id) decisions a policy makes for one link. */
struct AssignmentDecision
{
    MessageId msg = kInvalidMessage;
    int queueId = -1;
};

/** Strategy interface for per-link queue assignment. */
class AssignmentPolicy
{
  public:
    virtual ~AssignmentPolicy() = default;

    virtual std::string name() const = 0;

    /**
     * An independent copy carrying the full mid-run decision state
     * (for the counted-stream random policy: its per-link decision
     * counters). SimSession::adoptState clones the donor's policy so
     * a session resumed from a checkpoint makes exactly the decisions
     * the donor would have made.
     */
    virtual std::unique_ptr<AssignmentPolicy> clone() const = 0;

    /**
     * Reset internal state for a fresh run over the same machine.
     * After this call the policy must behave exactly like a newly
     * constructed instance seeded with @p seed — SimSession reuses
     * one instance per kind across runs instead of reallocating.
     */
    virtual void resetRun(std::uint64_t seed) { (void)seed; }

    /**
     * Append the mid-run decision state clone() would carry — for the
     * counted-stream random policy, its per-link decision counters —
     * as plain words. The checkpoint machinery persists this next to
     * the machine pools so a run restored from disk makes exactly the
     * decisions the interrupted one would have made. The compatible,
     * static and FCFS policies are pure functions of the link state
     * and save nothing.
     */
    virtual void saveState(std::vector<std::uint64_t>& out) const
    {
        (void)out;
    }

    /**
     * Restore state written by saveState into a policy freshly reset
     * with the original run's seed. Returns false on a word count the
     * policy cannot interpret (a torn or mismatched checkpoint).
     */
    virtual bool loadState(const std::vector<std::uint64_t>& state)
    {
        return state.empty();
    }

    /**
     * Called once per link before cycle 0. Static assignment happens
     * here. Returns false if the policy cannot set this link up (e.g.
     * not enough queues for a static assignment).
     */
    virtual bool initLink(LinkState& link,
                          std::vector<AssignmentDecision>& decisions)
    {
        (void)link;
        (void)decisions;
        return true;
    }

    /** Called once per link per cycle; append decisions to make. */
    virtual void tick(LinkState& link, Cycle now,
                      std::vector<AssignmentDecision>& decisions) = 0;
};

/** Section 7.1: dedicated queue per message, fixed for the whole run. */
class StaticPolicy : public AssignmentPolicy
{
  public:
    std::string name() const override { return "static"; }
    std::unique_ptr<AssignmentPolicy> clone() const override
    {
        return std::make_unique<StaticPolicy>(*this);
    }
    bool initLink(LinkState& link,
                  std::vector<AssignmentDecision>& decisions) override;
    void tick(LinkState&, Cycle, std::vector<AssignmentDecision>&) override
    {}
};

/**
 * Section 7.2: ordered + simultaneous dynamic assignment.
 *
 * Messages crossing a link are grouped by label; groups are served in
 * ascending label order across the link's shared pool. A group is
 * assigned when every smaller group has been served, enough queues are
 * free, and (unless eager reservation is on) at least one member has
 * requested.
 */
class CompatiblePolicy : public AssignmentPolicy
{
  public:
    /**
     * @param labels label per MessageId (normalized integers work).
     * @param eager reserve queues for a group as soon as it is the
     *        lowest unserved group, before any member arrives (the
     *        paper's "reservation scheme" remark in section 5).
     */
    CompatiblePolicy(std::vector<std::int64_t> labels, bool eager = false);

    std::string name() const override
    {
        return eager_ ? "compatible-eager" : "compatible";
    }
    std::unique_ptr<AssignmentPolicy> clone() const override
    {
        return std::make_unique<CompatiblePolicy>(*this);
    }
    void tick(LinkState& link, Cycle now,
              std::vector<AssignmentDecision>& decisions) override;

  private:
    std::vector<std::int64_t> labels_;
    bool eager_;
    /** Per-tick scratch (lowest unserved label group); no allocation
     *  in steady state — tick is on the simulator's hot path. */
    std::vector<Crossing*> unserved_;
};

/** Unsafe baseline: serve queue requests in arrival order. */
class FcfsPolicy : public AssignmentPolicy
{
  public:
    std::string name() const override { return "fcfs"; }
    std::unique_ptr<AssignmentPolicy> clone() const override
    {
        return std::make_unique<FcfsPolicy>(*this);
    }
    void tick(LinkState& link, Cycle now,
              std::vector<AssignmentDecision>& decisions) override;

  private:
    /** Per-tick scratch; tick runs on the simulator's hot path. */
    std::vector<Crossing*> pending_;
};

/**
 * Unsafe baseline: serve pending requests in random order.
 *
 * The shuffle order is drawn from a per-link *counted* stream: each
 * draw is a pure function of (run seed, link index, the number of
 * assignment decisions that link has made so far). A tick that cannot
 * assign anything — no pending request, or no free queue — draws
 * nothing and leaves the counter untouched, so the stream advances
 * only on state-changing ticks. That makes the policy independent of
 * how often it is ticked: an event-driven kernel that skips provably
 * inert cycles sees exactly the shuffles the dense reference kernel
 * sees, so fast-forwarding never desynchronizes the two (and
 * SimSession's canFastForward needs no kRandom special case).
 */
class RandomPolicy : public AssignmentPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed) : seed_(seed) {}

    std::string name() const override { return "random"; }
    std::unique_ptr<AssignmentPolicy> clone() const override
    {
        // The copy carries seed_ and the per-link decision counters:
        // the clone's future shuffles are exactly this policy's.
        return std::make_unique<RandomPolicy>(*this);
    }
    /** Restart every per-link stream as if freshly constructed. */
    void resetRun(std::uint64_t seed) override
    {
        seed_ = seed;
        std::fill(decisions_.begin(), decisions_.end(), 0);
    }
    void saveState(std::vector<std::uint64_t>& out) const override
    {
        out.insert(out.end(), decisions_.begin(), decisions_.end());
    }
    bool loadState(const std::vector<std::uint64_t>& state) override
    {
        // decisions_ grows lazily per link touched; a checkpoint may
        // carry any prefix length up to the link count, which this
        // policy cannot know — accept what was saved verbatim.
        decisions_ = state;
        return true;
    }
    void tick(LinkState& link, Cycle now,
              std::vector<AssignmentDecision>& decisions) override;

  private:
    std::uint64_t seed_;
    /** Assignment decisions made per link (the stream counters). */
    std::vector<std::uint64_t> decisions_;
    /** Per-tick shuffle scratch; tick is on the hot path. */
    std::vector<Crossing*> pending_;
};

/** Selector used by SimOptions and RunRequest. */
enum class PolicyKind : std::uint8_t
{
    kCompatible = 0,
    kCompatibleEager,
    kStatic,
    kFcfs,
    kRandom,
};

/** Number of PolicyKind values (SimSession's policy cache size). */
inline constexpr int kNumPolicyKinds = 5;
static_assert(static_cast<int>(PolicyKind::kRandom) + 1 ==
                  kNumPolicyKinds,
              "update kNumPolicyKinds when adding a PolicyKind — it "
              "sizes arrays indexed by the enum");

const char* policyKindName(PolicyKind kind);

/** Factory. @p labels may be empty for FCFS/random/static. */
std::unique_ptr<AssignmentPolicy>
makePolicy(PolicyKind kind, std::vector<std::int64_t> labels,
           std::uint64_t seed);

} // namespace syscomm::sim
