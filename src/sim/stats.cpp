#include "sim/stats.h"

#include <sstream>

namespace syscomm::sim {

std::string
SimStats::summary() const
{
    std::ostringstream os;
    os << "cycles:             " << cycles << "\n"
       << "words delivered:    " << wordsDelivered << "\n"
       << "words forwarded:    " << wordsForwarded << "\n"
       << "ops executed:       " << opsExecuted << " (" << computeOps
       << " compute)\n"
       << "queue assignments:  " << assignments << " (avg wait "
       << avgRequestWait() << " cycles)\n"
       << "queue releases:     " << releases << "\n"
       << "cell blocked cycles: " << cellBlockedCycles << "\n"
       << "avg queue occupancy: " << avgQueueOccupancy() << "\n";
    if (memAccesses) {
        os << "local memory accesses: " << memAccesses << " (stall "
           << memStallCycles << " cycles)\n";
    }
    if (extendedWords)
        os << "extension words:    " << extendedWords << "\n";
    return os.str();
}

} // namespace syscomm::sim
