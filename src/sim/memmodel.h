#pragma once

/**
 * @file
 * Systolic vs memory-to-memory comparison (paper, Fig. 1 and section 1).
 *
 * Under the memory-to-memory model a cell program never touches its
 * I/O queues directly: an incoming word is staged through local memory
 * before the program sees it, and an outgoing word is staged through
 * local memory before the OS ships it — "a total of at least four
 * local memory accesses ... for a cell to update a data item flowing
 * through the array". The systolic model needs none.
 */

#include <string>

#include "core/machine_spec.h"
#include "core/program.h"
#include "sim/machine.h"

namespace syscomm::sim {

/** One comparison row. */
struct ModelComparison
{
    RunResult systolic;
    RunResult memToMem;

    /** Ratio of memory-to-memory cycles to systolic cycles. */
    double speedup() const
    {
        return systolic.cycles
                   ? static_cast<double>(memToMem.cycles) /
                         static_cast<double>(systolic.cycles)
                   : 0.0;
    }

    /** Memory accesses per delivered word in the memory-to-memory run. */
    double accessesPerWord() const
    {
        return memToMem.stats.wordsDelivered
                   ? static_cast<double>(memToMem.stats.memAccesses) /
                         static_cast<double>(memToMem.stats.wordsDelivered)
                   : 0.0;
    }

    std::string summary() const;
};

/**
 * Run @p program under both communication models with identical queue
 * resources and assignment policy.
 */
ModelComparison compareModels(const Program& program,
                              const MachineSpec& spec,
                              SimOptions options = {});

} // namespace syscomm::sim
