#include "sim/memmodel.h"

#include <sstream>

namespace syscomm::sim {

std::string
ModelComparison::summary() const
{
    std::ostringstream os;
    os << "systolic:        " << systolic.cycles << " cycles, "
       << systolic.stats.memAccesses << " memory accesses\n"
       << "memory-to-memory: " << memToMem.cycles << " cycles, "
       << memToMem.stats.memAccesses << " memory accesses ("
       << accessesPerWord() << " per delivered word)\n"
       << "systolic speedup: " << speedup() << "x\n";
    return os.str();
}

ModelComparison
compareModels(const Program& program, const MachineSpec& spec,
              SimOptions options)
{
    ModelComparison cmp;
    options.memoryToMemory = false;
    cmp.systolic = simulateProgram(program, spec, options);
    options.memoryToMemory = true;
    cmp.memToMem = simulateProgram(program, spec, options);
    return cmp;
}

} // namespace syscomm::sim
