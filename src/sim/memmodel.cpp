#include "sim/memmodel.h"

#include <sstream>

namespace syscomm::sim {

std::string
ModelComparison::summary() const
{
    std::ostringstream os;
    os << "systolic:        " << systolic.cycles << " cycles, "
       << systolic.stats.memAccesses << " memory accesses\n"
       << "memory-to-memory: " << memToMem.cycles << " cycles, "
       << memToMem.stats.memAccesses << " memory accesses ("
       << accessesPerWord() << " per delivered word)\n"
       << "systolic speedup: " << speedup() << "x\n";
    return os.str();
}

ModelComparison
compareModels(const Program& program, const MachineSpec& spec,
              SimOptions options)
{
    // The memory model is session-scoped: one compiled session per
    // model, same per-run request for both.
    ModelComparison cmp;
    RunRequest request = runRequestFrom(options);
    options.memoryToMemory = false;
    cmp.systolic =
        SimSession(program, spec, sessionOptionsFrom(options))
            .run(request);
    options.memoryToMemory = true;
    cmp.memToMem =
        SimSession(program, spec, sessionOptionsFrom(options))
            .run(request);
    return cmp;
}

} // namespace syscomm::sim
