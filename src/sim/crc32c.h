#pragma once

/**
 * @file
 * CRC32C (Castagnoli) — the frame checksum of the v3 on-disk formats.
 *
 * The sweep journal, checkpoint stream and spool markers frame every
 * record with a CRC32C over the record header + payload so a torn or
 * bit-flipped frame is detected and truncated-to-last-good instead of
 * being half-applied. CRC32C is chosen over the FNV fold used for
 * *semantic* digests (sim/fnv.h) because it is an error-detection
 * code with guaranteed burst-error behaviour, it has a fixed
 * little-endian 32-bit wire width, and the same polynomial (0x1EDC6F41,
 * reflected 0x82F63B78) is what iSCSI/ext4/RocksDB frame with — any
 * external tool can validate a journal without linking this repo.
 *
 * Software table-driven implementation: one 256-entry table built on
 * first use, ~1 byte/cycle — journal frames are small and rare, so
 * hardware CRC instructions are not worth a feature probe.
 */

#include <cstddef>
#include <cstdint>

namespace syscomm::sim {

namespace crc32c_detail {

struct Table
{
    std::uint32_t entry[256];

    Table()
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
            entry[i] = c;
        }
    }
};

inline const Table&
table()
{
    static const Table t;
    return t;
}

} // namespace crc32c_detail

/**
 * CRC32C of @p len bytes at @p data, chained from @p seed (pass the
 * previous call's return value to checksum discontiguous pieces;
 * pass 0 to start).
 */
inline std::uint32_t
crc32c(const void* data, std::size_t len, std::uint32_t seed = 0)
{
    const auto& t = crc32c_detail::table();
    const auto* p = static_cast<const std::uint8_t*>(data);
    std::uint32_t c = ~seed;
    for (std::size_t i = 0; i < len; ++i)
        c = t.entry[(c ^ p[i]) & 0xff] ^ (c >> 8);
    return ~c;
}

} // namespace syscomm::sim
