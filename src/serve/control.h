#pragma once

/**
 * @file
 * The daemon's lifecycle control word: one atomic the signal
 * handlers, the accept loop, the workers and the stats endpoint all
 * read. Transitions only move "forward" (serving -> draining ->
 * stopped; reload is a serving-time pulse), so a relaxed store from a
 * SIGTERM handler and a relaxed load from a worker need no further
 * coordination — the worst case is observing the old word for one
 * iteration.
 */

#include <atomic>

namespace syscomm::serve {

/** What the daemon should be doing. */
enum class ServiceWant : int
{
    /** Constructed but not started: sockets unbound, nothing runs. */
    kWait = 0,
    /** Normal operation: accept, admit, execute. */
    kServe,
    /**
     * Re-scan the spool directory for externally dropped submissions
     * (SIGHUP). Acted on once by the daemon, which then folds the
     * word back to kServe.
     */
    kReload,
    /**
     * Graceful drain (SIGTERM / the drain verb): stop admitting,
     * park journaled in-flight sweeps at their next checkpoint,
     * requeue the rest. Existing connections keep answering status/
     * result/stats.
     */
    kDrain,
    /** Full shutdown: close sockets, join threads. */
    kStop,
};

/**
 * The shared control word. set() is async-signal-safe (a plain atomic
 * store), which is the whole reason this is a word and not a mutex-
 * guarded state machine.
 */
class ServiceControl
{
  public:
    ServiceWant get() const
    {
        return want_.load(std::memory_order_relaxed);
    }

    void set(ServiceWant want)
    {
        want_.store(want, std::memory_order_relaxed);
    }

    /**
     * Advance to @p want only from @p expected — keeps a late SIGTERM
     * from resurrecting a daemon that already reached kStop.
     */
    bool advance(ServiceWant expected, ServiceWant want)
    {
        return want_.compare_exchange_strong(expected, want,
                                             std::memory_order_relaxed);
    }

    /** Human-readable state for the stats verb and logs. */
    const char* status() const
    {
        switch (get()) {
          case ServiceWant::kWait:
            return "waiting";
          case ServiceWant::kServe:
            return "serving";
          case ServiceWant::kReload:
            return "reloading";
          case ServiceWant::kDrain:
            return "draining";
          case ServiceWant::kStop:
            return "stopped";
        }
        return "?";
    }

  private:
    std::atomic<ServiceWant> want_{ServiceWant::kWait};
};

} // namespace syscomm::serve
