#include "serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace syscomm::serve {

JsonValue
JsonValue::boolean(bool v)
{
    JsonValue out;
    out.kind_ = Kind::kBool;
    out.bool_ = v;
    return out;
}

JsonValue
JsonValue::number(double v)
{
    JsonValue out;
    out.kind_ = Kind::kNumber;
    out.num_ = v;
    return out;
}

JsonValue
JsonValue::integer(std::int64_t v)
{
    JsonValue out;
    out.kind_ = Kind::kNumber;
    out.integral_ = true;
    out.int_ = v;
    return out;
}

JsonValue
JsonValue::str(std::string v)
{
    JsonValue out;
    out.kind_ = Kind::kString;
    out.string_ = std::move(v);
    return out;
}

JsonValue
JsonValue::array()
{
    JsonValue out;
    out.kind_ = Kind::kArray;
    return out;
}

JsonValue
JsonValue::object()
{
    JsonValue out;
    out.kind_ = Kind::kObject;
    return out;
}

JsonValue&
JsonValue::push(JsonValue v)
{
    if (kind_ == Kind::kNull)
        kind_ = Kind::kArray;
    items_.push_back(std::move(v));
    return *this;
}

JsonValue&
JsonValue::set(std::string key, JsonValue v)
{
    if (kind_ == Kind::kNull)
        kind_ = Kind::kObject;
    for (auto& member : members_) {
        if (member.first == key) {
            member.second = std::move(v);
            return *this;
        }
    }
    members_.emplace_back(std::move(key), std::move(v));
    return *this;
}

const JsonValue*
JsonValue::find(std::string_view key) const
{
    if (kind_ != Kind::kObject)
        return nullptr;
    for (const auto& member : members_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

bool
JsonValue::getBool(std::string_view key, bool def) const
{
    const JsonValue* v = find(key);
    return (v != nullptr && v->isBool()) ? v->asBool() : def;
}

std::int64_t
JsonValue::getInt(std::string_view key, std::int64_t def) const
{
    const JsonValue* v = find(key);
    return (v != nullptr && v->isNumber()) ? v->asInt64() : def;
}

double
JsonValue::getNumber(std::string_view key, double def) const
{
    const JsonValue* v = find(key);
    return (v != nullptr && v->isNumber()) ? v->asDouble() : def;
}

std::string
JsonValue::getString(std::string_view key, const std::string& def) const
{
    const JsonValue* v = find(key);
    return (v != nullptr && v->isString()) ? v->asString() : def;
}

namespace {

/** Recursive-descent parser over a bounded string_view. */
class Parser
{
  public:
    Parser(std::string_view text, const JsonParseOptions& options)
        : text_(text), options_(options)
    {
    }

    bool parse(JsonValue& out, std::string& error)
    {
        skipSpace();
        if (!parseValue(out, 0))
            goto fail;
        skipSpace();
        if (pos_ != text_.size()) {
            error_ = "trailing garbage";
            goto fail;
        }
        return true;
      fail:
        error = error_ + " at byte " + std::to_string(pos_);
        out = JsonValue();
        return false;
    }

  private:
    bool fail(const char* message)
    {
        if (error_.empty())
            error_ = message;
        return false;
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void skipSpace()
    {
        while (!atEnd()) {
            char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("invalid literal");
        pos_ += word.size();
        return true;
    }

    bool parseValue(JsonValue& out, std::size_t depth)
    {
        if (depth > options_.maxDepth)
            return fail("nesting too deep");
        if (atEnd())
            return fail("unexpected end of input");
        switch (peek()) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = JsonValue::str(std::move(s));
            return true;
          }
          case 't':
            out = JsonValue::boolean(true);
            return literal("true");
          case 'f':
            out = JsonValue::boolean(false);
            return literal("false");
          case 'n':
            out = JsonValue();
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool parseObject(JsonValue& out, std::size_t depth)
    {
        ++pos_; // '{'
        out = JsonValue::object();
        skipSpace();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipSpace();
            if (atEnd() || peek() != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (atEnd() || peek() != ':')
                return fail("expected ':'");
            ++pos_;
            skipSpace();
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            // Duplicate keys: last one wins, like every other parser.
            out.set(std::move(key), std::move(value));
            skipSpace();
            if (atEnd())
                return fail("unterminated object");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool parseArray(JsonValue& out, std::size_t depth)
    {
        ++pos_; // '['
        out = JsonValue::array();
        skipSpace();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipSpace();
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.items().push_back(std::move(value));
            skipSpace();
            if (atEnd())
                return fail("unterminated array");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool parseString(std::string& out)
    {
        ++pos_; // '"'
        out.clear();
        while (!atEnd()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (atEnd())
                return fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"':
                out.push_back('"');
                break;
              case '\\':
                out.push_back('\\');
                break;
              case '/':
                out.push_back('/');
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u': {
                unsigned code = 0;
                if (!parseHex4(code))
                    return false;
                appendUtf8(out, code);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseHex4(unsigned& out)
    {
        out = 0;
        for (int i = 0; i < 4; ++i) {
            if (atEnd())
                return fail("truncated \\u escape");
            char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= unsigned(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= unsigned(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= unsigned(c - 'A' + 10);
            else
                return fail("bad \\u escape digit");
        }
        return true;
    }

    /** BMP-only (surrogate pairs come out as two 3-byte sequences —
     *  acceptable for a protocol whose strings are ASCII in practice). */
    static void appendUtf8(std::string& out, unsigned code)
    {
        if (code < 0x80) {
            out.push_back(char(code));
        } else if (code < 0x800) {
            out.push_back(char(0xc0 | (code >> 6)));
            out.push_back(char(0x80 | (code & 0x3f)));
        } else {
            out.push_back(char(0xe0 | (code >> 12)));
            out.push_back(char(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(char(0x80 | (code & 0x3f)));
        }
    }

    bool parseNumber(JsonValue& out)
    {
        std::size_t start = pos_;
        bool integral = true;
        if (!atEnd() && peek() == '-')
            ++pos_;
        if (atEnd() || peek() < '0' || peek() > '9')
            return fail("invalid number");
        while (!atEnd() && peek() >= '0' && peek() <= '9')
            ++pos_;
        if (!atEnd() && peek() == '.') {
            integral = false;
            ++pos_;
            if (atEnd() || peek() < '0' || peek() > '9')
                return fail("invalid number");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            integral = false;
            ++pos_;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (atEnd() || peek() < '0' || peek() > '9')
                return fail("invalid number");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        std::string token(text_.substr(start, pos_ - start));
        if (integral) {
            errno = 0;
            char* end = nullptr;
            long long v = std::strtoll(token.c_str(), &end, 10);
            if (errno == 0 && end == token.c_str() + token.size()) {
                out = JsonValue::integer(v);
                return true;
            }
            // Out of int64 range: fall back to double like the spec
            // allows (precision loss is on the sender).
        }
        char* end = nullptr;
        double d = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("invalid number");
        out = JsonValue::number(d);
        return true;
    }

    std::string_view text_;
    JsonParseOptions options_;
    std::size_t pos_ = 0;
    std::string error_;
};

void
writeString(std::string& out, const std::string& s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              unsigned(static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
writeValue(std::string& out, const JsonValue& v)
{
    switch (v.kind()) {
      case JsonValue::Kind::kNull:
        out += "null";
        break;
      case JsonValue::Kind::kBool:
        out += v.asBool() ? "true" : "false";
        break;
      case JsonValue::Kind::kNumber:
        if (v.isIntegral()) {
            out += std::to_string(v.asInt64());
        } else {
            double d = v.asDouble();
            if (std::isnan(d) || std::isinf(d)) {
                out += "null"; // JSON has no NaN/Inf
            } else {
                char buf[32];
                std::snprintf(buf, sizeof buf, "%.17g", d);
                out += buf;
            }
        }
        break;
      case JsonValue::Kind::kString:
        writeString(out, v.asString());
        break;
      case JsonValue::Kind::kArray: {
        out.push_back('[');
        bool first = true;
        for (const auto& item : v.items()) {
            if (!first)
                out.push_back(',');
            first = false;
            writeValue(out, item);
        }
        out.push_back(']');
        break;
      }
      case JsonValue::Kind::kObject: {
        out.push_back('{');
        bool first = true;
        for (const auto& member : v.members()) {
            if (!first)
                out.push_back(',');
            first = false;
            writeString(out, member.first);
            out.push_back(':');
            writeValue(out, member.second);
        }
        out.push_back('}');
        break;
      }
    }
}

} // namespace

bool
parseJson(std::string_view text, JsonValue& out, std::string& error,
          const JsonParseOptions& options)
{
    Parser parser(text, options);
    return parser.parse(out, error);
}

std::string
writeJson(const JsonValue& value)
{
    std::string out;
    writeValue(out, value);
    return out;
}

} // namespace syscomm::serve
