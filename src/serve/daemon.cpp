#include "serve/daemon.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/lint.h"
#include "sim/shape_sweep.h"

namespace syscomm::serve {

namespace fs = std::filesystem;

const char*
lintModeName(DaemonOptions::LintMode mode)
{
    switch (mode) {
      case DaemonOptions::LintMode::kOff:
        return "off";
      case DaemonOptions::LintMode::kWarn:
        return "warn";
      case DaemonOptions::LintMode::kEnforce:
        return "enforce";
    }
    return "?";
}

bool
parseLintMode(const std::string& name, DaemonOptions::LintMode& out)
{
    static constexpr DaemonOptions::LintMode kAll[] = {
        DaemonOptions::LintMode::kOff,
        DaemonOptions::LintMode::kWarn,
        DaemonOptions::LintMode::kEnforce,
    };
    for (DaemonOptions::LintMode mode : kAll) {
        if (name == lintModeName(mode)) {
            out = mode;
            return true;
        }
    }
    return false;
}

/** One admitted submission, pinned for the daemon's lifetime. */
struct SyscommDaemon::Sub
{
    std::string id;
    SubmissionState state = SubmissionState::kWaiting;
    /** Parsed payload; meaningless for terminal spool-recovered
     *  entries (payloadValid false), which never execute again. */
    Submission payload;
    bool payloadValid = false;
    /** The original submit request line (what the spool persists). */
    std::string rawLine;
    /** Sweep journal path; "" = not journaled (no spool / not a sweep). */
    std::string journalPath;
    /** Terminal result body (the result verb's "result" member). */
    JsonValue result;
    /**
     * Stop request for in-flight work: set on cancel and on drain,
     * polled by ShapeSweep (stopFlag) and the run slice loop.
     */
    std::atomic<bool> stop{false};
    /** Distinguishes cancel from drain (guarded by daemon mutex). */
    bool cancelRequested = false;
    /** Was the compile served from the cache? */
    bool cachedCompile = false;
    /** Last pause-slice cycle count of a single run (daemon mutex). */
    Cycle executedCycles = 0;
    /** Client-supplied dedup key; "" = none (daemon mutex). */
    std::string idempotencyKey;
    /**
     * Admission-time lint report (--lint=warn|enforce), rendered once
     * at admission and stamped onto the terminal result by finish().
     * Immutable after admission.
     */
    JsonValue lint;
    bool hasLint = false;
    /**
     * Wall time (steady ms) of the last slice boundary of a single
     * run; 0 while not running. The watchdog compares it to now.
     */
    std::atomic<std::int64_t> lastProgressMs{0};
    /** Set by the watchdog; the slice loop turns it into kError. */
    std::atomic<bool> watchdogFired{false};
};

namespace {

constexpr const char* kSubSuffix = ".sub.json";
constexpr const char* kDoneSuffix = ".done.json";
constexpr const char* kJournalSuffix = ".journal";

std::string
makeId(std::uint64_t n)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "s-%06llu",
                  static_cast<unsigned long long>(n));
    return buf;
}

std::int64_t
steadyNowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool
sendAll(int fd, const std::string& data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        // MSG_NOSIGNAL: a client that disconnected mid-response must
        // cost us an error return, not a process-wide SIGPIPE.
        ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

JsonValue
errorResponse(const std::string& message)
{
    JsonValue out = JsonValue::object();
    out.set("ok", JsonValue::boolean(false));
    out.set("error", JsonValue::str(message));
    return out;
}

JsonValue
rejectResponse(const char* reason, const std::string& message)
{
    JsonValue out = JsonValue::object();
    out.set("ok", JsonValue::boolean(false));
    out.set("rejected", JsonValue::str(reason));
    out.set("state", JsonValue::str(submissionStateName(
                         SubmissionState::kRejected)));
    out.set("error", JsonValue::str(message));
    return out;
}

/** The wire form of one finished run (shared by run and sweep rows). */
JsonValue
runResultJson(const sim::RunResult& result, std::uint64_t machineDigest)
{
    JsonValue out = JsonValue::object();
    out.set("status", JsonValue::str(result.statusStr()));
    out.set("cycles", JsonValue::integer(result.cycles));
    if (!result.error.empty())
        out.set("error", JsonValue::str(result.error));
    out.set("machine_digest", JsonValue::str(hexDigest(machineDigest)));
    return out;
}

} // namespace

SyscommDaemon::SyscommDaemon(DaemonOptions options)
    : options_(std::move(options)), cache_(options_.cacheCapacity)
{
    if (options_.workers < 1)
        options_.workers = 1;
    if (options_.sliceCycles < 1)
        options_.sliceCycles = 1;
    if (options_.watchdogMs < 0)
        options_.watchdogMs = 0;
    io_ = options_.io != nullptr ? options_.io : &Io::system();
}

SyscommDaemon::~SyscommDaemon()
{
    stop();
}

std::string
SyscommDaemon::spoolFile(const std::string& id,
                         const char* suffix) const
{
    return options_.spoolDir + "/" + id + suffix;
}

bool
SyscommDaemon::start(std::string& error)
{
    if (started_) {
        error = "already started";
        return false;
    }
    if (!recoverSpool(error))
        return false;

    if (!options_.socketPath.empty()) {
        unixFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (unixFd_ < 0) {
            error = "socket(AF_UNIX): " + std::string(strerror(errno));
            return false;
        }
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (options_.socketPath.size() >= sizeof(addr.sun_path)) {
            error = "socket path too long";
            return false;
        }
        std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(options_.socketPath.c_str());
        if (::bind(unixFd_, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(unixFd_, 64) != 0) {
            error = "bind(" + options_.socketPath +
                    "): " + strerror(errno);
            return false;
        }
    }
    if (options_.tcpPort >= 0) {
        tcpFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tcpFd_ < 0) {
            error = "socket(AF_INET): " + std::string(strerror(errno));
            return false;
        }
        int one = 1;
        ::setsockopt(tcpFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<std::uint16_t>(options_.tcpPort));
        if (::bind(tcpFd_, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(tcpFd_, 64) != 0) {
            error = "bind(tcp " + std::to_string(options_.tcpPort) +
                    "): " + strerror(errno);
            return false;
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(tcpFd_, reinterpret_cast<sockaddr*>(&bound),
                          &len) == 0)
            boundTcpPort_ = ntohs(bound.sin_port);
    }
    if (::pipe(wakePipe_) != 0) {
        error = "pipe: " + std::string(strerror(errno));
        return false;
    }

    control_.set(ServiceWant::kServe);
    stopping_ = false;
    for (int i = 0; i < options_.workers; ++i)
        workerThreads_.emplace_back(&SyscommDaemon::workerLoop, this);
    acceptThread_ = std::thread(&SyscommDaemon::acceptLoop, this);
    if (options_.watchdogMs > 0)
        watchdogThread_ =
            std::thread(&SyscommDaemon::watchdogLoop, this);
    started_ = true;
    return true;
}

void
SyscommDaemon::requestDrain()
{
    // A late drain must not resurrect a stopped daemon.
    if (!control_.advance(ServiceWant::kServe, ServiceWant::kDrain))
        control_.advance(ServiceWant::kReload, ServiceWant::kDrain);
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, sub] : subs_) {
        if (sub->state == SubmissionState::kCompiling ||
            sub->state == SubmissionState::kRunning)
            sub->stop.store(true, std::memory_order_relaxed);
    }
    workCv_.notify_all();
}

void
SyscommDaemon::reload()
{
    std::string ignored;
    recoverSpool(ignored);
    std::lock_guard<std::mutex> lock(mutex_);
    // The operator's signal that the disk situation changed (space
    // freed, spool remounted): leave degraded mode optimistically —
    // the next spool write re-enters it if the disk is still broken.
    clearDegradedLocked();
    workCv_.notify_all();
}

void
SyscommDaemon::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!started_ && workerThreads_.empty())
            return;
        stopping_ = true;
    }
    control_.set(ServiceWant::kStop);
    workCv_.notify_all();
    idleCv_.notify_all();
    if (wakePipe_[1] >= 0) {
        char byte = 'x';
        [[maybe_unused]] ssize_t n = ::write(wakePipe_[1], &byte, 1);
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (watchdogThread_.joinable())
        watchdogThread_.join();
    {
        std::lock_guard<std::mutex> lock(clientMutex_);
        for (int fd : clientFds_) {
            if (fd >= 0)
                ::shutdown(fd, SHUT_RDWR);
        }
    }
    for (auto& t : clientThreads_) {
        if (t.joinable())
            t.join();
    }
    clientThreads_.clear();
    for (auto& t : workerThreads_) {
        if (t.joinable())
            t.join();
    }
    workerThreads_.clear();
    if (unixFd_ >= 0) {
        ::close(unixFd_);
        unixFd_ = -1;
        ::unlink(options_.socketPath.c_str());
    }
    if (tcpFd_ >= 0) {
        ::close(tcpFd_);
        tcpFd_ = -1;
    }
    for (int& fd : wakePipe_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
    started_ = false;
}

bool
SyscommDaemon::waitIdle(int timeoutMs)
{
    std::unique_lock<std::mutex> lock(mutex_);
    return idleCv_.wait_for(
        lock, std::chrono::milliseconds(timeoutMs), [&] {
            const ServiceWant want = control_.get();
            const bool draining = want == ServiceWant::kDrain ||
                                  want == ServiceWant::kStop;
            return active_ == 0 && (queue_.empty() || draining);
        });
}

// ---------------------------------------------------------------
// Spool
// ---------------------------------------------------------------

bool
SyscommDaemon::recoverSpool(std::string& error)
{
    if (options_.spoolDir.empty())
        return true;
    std::error_code ec;
    fs::create_directories(options_.spoolDir, ec);
    if (ec) {
        error = "spool: cannot create " + options_.spoolDir;
        return false;
    }

    std::vector<std::string> ids;
    std::vector<std::string> orphanTmp;
    for (const auto& entry :
         fs::directory_iterator(options_.spoolDir, ec)) {
        const std::string name = entry.path().filename().string();
        const std::size_t sufLen = std::strlen(kSubSuffix);
        if (name.size() > sufLen &&
            name.compare(name.size() - sufLen, sufLen, kSubSuffix) ==
                0)
            ids.push_back(name.substr(0, name.size() - sufLen));
        // A crash between tmp-write and rename leaves "<x>.tmp"; the
        // rename never happened, so the file is dead weight.
        else if (name.size() > 4 &&
                 name.compare(name.size() - 4, 4, ".tmp") == 0)
            orphanTmp.push_back(entry.path().string());
    }
    for (const std::string& path : orphanTmp)
        io_->remove(path);
    // Id order is admission order: recovery requeues the backlog in
    // the order clients were ack'd, deterministically.
    std::sort(ids.begin(), ids.end());

    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string& id : ids) {
        if (subs_.count(id) != 0)
            continue; // reload(): already known
        if (id.size() > 2 && id.compare(0, 2, "s-") == 0) {
            const std::uint64_t n =
                std::strtoull(id.c_str() + 2, nullptr, 10);
            if (n >= nextId_)
                nextId_ = n + 1;
        }
        auto sub = std::make_unique<Sub>();
        sub->id = id;
        std::string ioErr;
        if (!io_->readFile(spoolFile(id, kSubSuffix), sub->rawLine,
                           ioErr))
            continue;
        // Rebuild the idempotency index from the persisted request
        // line, terminal or not: a client retrying across the restart
        // must land on this id, not create a duplicate.
        {
            JsonValue raw;
            std::string rawErr;
            if (parseJson(sub->rawLine, raw, rawErr)) {
                sub->idempotencyKey = raw.getString("idempotency_key");
                if (!sub->idempotencyKey.empty())
                    idempotency_.emplace(sub->idempotencyKey, id);
            }
        }

        std::string doneText;
        if (io_->readFile(spoolFile(id, kDoneSuffix), doneText,
                          ioErr)) {
            // Finished in a previous life: re-index the result.
            JsonValue done;
            std::string err;
            SubmissionState state = SubmissionState::kError;
            if (parseJson(doneText, done, err) &&
                parseSubmissionState(done.getString("state"), state)) {
                sub->state = state;
                const JsonValue* result = done.find("result");
                if (result != nullptr)
                    sub->result = *result;
            } else {
                sub->state = SubmissionState::kError;
                sub->result = JsonValue::object().set(
                    "error",
                    JsonValue::str("unreadable done marker"));
            }
            subs_.emplace(id, std::move(sub));
            continue;
        }

        // Unfinished: reparse and requeue. Journaled sweeps resume
        // from their checkpoints; runs re-execute from scratch (they
        // are deterministic, so the client observes no difference).
        JsonValue msg;
        std::string err;
        if (!parseJson(sub->rawLine, msg, err) ||
            !parseSubmission(msg, sub->payload, err)) {
            sub->state = SubmissionState::kError;
            sub->result = JsonValue::object().set(
                "error", JsonValue::str("spool recovery: " + err));
            writeDoneMarker(*sub);
            subs_.emplace(id, std::move(sub));
            continue;
        }
        sub->payloadValid = true;
        if (sub->payload.isSweep)
            sub->journalPath = spoolFile(id, kJournalSuffix);
        sub->state = SubmissionState::kWaiting;
        queue_.push_back(sub.get());
        subs_.emplace(id, std::move(sub));
    }
    return true;
}

void
SyscommDaemon::writeDoneMarker(Sub& sub)
{
    if (options_.spoolDir.empty())
        return;
    JsonValue done = JsonValue::object();
    done.set("id", JsonValue::str(sub.id));
    done.set("state",
             JsonValue::str(submissionStateName(sub.state)));
    done.set("result", sub.result);
    std::string ioErr;
    if (!writeFileAtomicIo(*io_, spoolFile(sub.id, kDoneSuffix),
                           writeJson(done), options_.fsyncPolicy,
                           ioErr)) {
        // The result survives in memory and the submission line is
        // still spooled — a restart re-executes it. Flag the disk.
        setDegradedLocked("done marker " + sub.id + ": " + ioErr);
    } else {
        clearDegradedLocked();
    }
}

void
SyscommDaemon::setDegradedLocked(const std::string& reason)
{
    degraded_ = true;
    degradedReason_ = reason;
}

void
SyscommDaemon::clearDegradedLocked()
{
    degraded_ = false;
    degradedReason_.clear();
}

// ---------------------------------------------------------------
// Execution
// ---------------------------------------------------------------

void
SyscommDaemon::workerLoop()
{
    for (;;) {
        Sub* sub = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [&] {
                if (stopping_)
                    return true;
                const ServiceWant want = control_.get();
                const bool serving = want == ServiceWant::kServe ||
                                     want == ServiceWant::kReload;
                return serving && !queue_.empty();
            });
            if (stopping_)
                return;
            sub = queue_.front();
            queue_.pop_front();
            sub->state = SubmissionState::kCompiling;
            ++active_;
        }
        execute(sub);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
        }
        idleCv_.notify_all();
    }
}

void
SyscommDaemon::watchdogLoop()
{
    const auto poll = std::chrono::milliseconds(
        std::max<std::int64_t>(10, options_.watchdogMs / 4));
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
        workCv_.wait_for(lock, poll);
        if (stopping_)
            return;
        const std::int64_t now = steadyNowMs();
        for (auto& [id, sub] : subs_) {
            // Single runs only: their slice loop reports progress
            // every sliceCycles. Sweeps legitimately go long between
            // journal checkpoints, so they are not watched.
            if (sub->state != SubmissionState::kRunning ||
                !sub->payloadValid || sub->payload.isSweep)
                continue;
            if (sub->watchdogFired.load(std::memory_order_relaxed))
                continue;
            const std::int64_t last =
                sub->lastProgressMs.load(std::memory_order_relaxed);
            if (last > 0 && now - last > options_.watchdogMs) {
                sub->watchdogFired.store(true,
                                         std::memory_order_relaxed);
                sub->stop.store(true, std::memory_order_relaxed);
                ++watchdogFired_;
            }
        }
    }
}

void
SyscommDaemon::finish(Sub* sub, SubmissionState state,
                      JsonValue result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sub->state = state;
    // --lint=warn rides along: the submission was served anyway, but
    // its result carries the admission-time diagnostics.
    if (sub->hasLint)
        result.set("lint", sub->lint);
    sub->result = std::move(result);
    writeDoneMarker(*sub);
    idleCv_.notify_all();
}

void
SyscommDaemon::execute(Sub* sub)
{
    Submission& payload = sub->payload;
    const std::uint64_t key = CompileCache::keyFor(
        payload.program, payload.topo, payload.programVersion);
    // The cache consumes copies: a drain can park this submission and
    // spool recovery may need the payload intact on a later pass.
    bool wasHit = false;
    CachedProgram entry =
        cache_.get(key, Program(payload.program),
                   SharedTopology(Topology(payload.topo)), &wasHit);
    sub->cachedCompile = wasHit;

    if (!entry.compiled->valid()) {
        finish(sub, SubmissionState::kError,
               JsonValue::object().set(
                   "error", JsonValue::str(entry.compiled->error())));
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (sub->cancelRequested) {
            sub->state = SubmissionState::kCancelled;
            sub->result = JsonValue::object();
            writeDoneMarker(*sub);
            idleCv_.notify_all();
            return;
        }
        sub->state = SubmissionState::kRunning;
        // 0 = "no slice boundary seen yet"; the watchdog ignores it,
        // so a submission re-queued after a park can never be judged
        // by a stale timestamp from its previous execution.
        sub->lastProgressMs.store(0, std::memory_order_relaxed);
        sub->watchdogFired.store(false, std::memory_order_relaxed);
    }
    if (payload.isSweep)
        executeSweep(sub, entry);
    else
        executeRun(sub, entry);
}

void
SyscommDaemon::executeRun(Sub* sub, const CachedProgram& entry)
{
    const Submission& payload = sub->payload;
    MachineSpec spec;
    spec.topo = entry.compiled->sharedTopo();
    const sim::ShapeSpec& shape = payload.shapes[0];
    spec.queuesPerLink = shape.queuesPerLink;
    spec.queueCapacity = shape.queueCapacity;
    spec.extensionCapacity = shape.extensionCapacity;
    spec.extensionPenalty = shape.extensionPenalty;

    sim::SessionOptions sessionOptions;
    sessionOptions.kernel = payload.kernel;
    sim::SimSession session(entry.compiled, spec, sessionOptions);

    const Cycle budget = payload.cycleBudget > 0
                                  ? payload.cycleBudget
                                  : options_.defaultCycleBudget;
    const Cycle slice = options_.sliceCycles;

    // The service budget rides on pauseAt slices: the run is never
    // more than one slice away from noticing a cancel, a drain, or
    // budget exhaustion, without perturbing the simulation (pausing
    // is bit-exact by contract).
    sim::RunRequest request = payload.requests[0];
    request.pauseAt = std::min(slice, budget);
    sub->lastProgressMs.store(steadyNowMs(),
                              std::memory_order_relaxed);
    sim::RunResult result = session.run(request);
    while (result.status == sim::RunStatus::kPaused) {
        sub->lastProgressMs.store(steadyNowMs(),
                                  std::memory_order_relaxed);
        bool cancelled = false;
        bool draining = false;
        bool watchdogged = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            sub->executedCycles = result.cycles;
            if (sub->stop.load(std::memory_order_relaxed)) {
                // Watchdog verdicts outrank cancel/drain: the run
                // overshot its slice deadline and fails explicitly,
                // never silently requeues.
                watchdogged = sub->watchdogFired.load(
                    std::memory_order_relaxed);
                cancelled = !watchdogged && sub->cancelRequested;
                draining = !watchdogged && !cancelled;
            }
        }
        if (watchdogged) {
            finish(sub, SubmissionState::kError,
                   JsonValue::object()
                       .set("error",
                            JsonValue::str(
                                "watchdog: run stuck past its slice "
                                "deadline (" +
                                std::to_string(options_.watchdogMs) +
                                " ms)"))
                       .set("cycles",
                            JsonValue::integer(result.cycles)));
            return;
        }
        if (cancelled) {
            finish(sub, SubmissionState::kCancelled,
                   JsonValue::object().set(
                       "cycles", JsonValue::integer(result.cycles)));
            return;
        }
        if (draining) {
            // Single runs carry no checkpoint; park the submission
            // back at the queue head — a restarted daemon re-runs it
            // from scratch, which is observably identical because
            // runs are deterministic.
            std::lock_guard<std::mutex> lock(mutex_);
            sub->state = SubmissionState::kWaiting;
            queue_.push_front(sub);
            idleCv_.notify_all();
            return;
        }
        if (result.cycles >= budget) {
            JsonValue body = runResultJson(result,
                                           session.machineDigest());
            body.set("status",
                     JsonValue::str(submissionStateName(
                         SubmissionState::kBudget)));
            body.set("cycle_budget", JsonValue::integer(budget));
            finish(sub, SubmissionState::kBudget, std::move(body));
            return;
        }
        result = session.resume(
            std::min<Cycle>(result.cycles + slice, budget));
    }

    JsonValue body = runResultJson(result, session.machineDigest());
    body.set("cached_compile", JsonValue::boolean(sub->cachedCompile));
    finish(sub, submissionStateForRun(result.status), std::move(body));
}

void
SyscommDaemon::executeSweep(Sub* sub, const CachedProgram& entry)
{
    const Submission& payload = sub->payload;
    sim::ShapeSweepOptions sweepOptions;
    sweepOptions.session.kernel = payload.kernel;
    // A sweep parallelizes inside its daemon worker: the operator's
    // --sweep-workers knob sets the per-sweep thread budget (1 keeps
    // the old one-thread-per-submission regime, <= 0 lets the sweep
    // size itself to the hardware), and a submission may cap — never
    // raise — it with its own sweep_workers field. Results are
    // bit-identical at any worker count; only wall clock moves.
    // Total daemon threads ≈ workers × sweep-workers when every
    // worker is running a sweep — size the knobs together.
    int sweepWorkers = options_.sweepWorkers;
    if (payload.sweepWorkers > 0 &&
        (sweepWorkers <= 0 || payload.sweepWorkers < sweepWorkers))
        sweepWorkers = payload.sweepWorkers;
    sweepOptions.numWorkers = sweepWorkers;
    sweepOptions.journalPath = sub->journalPath;
    sweepOptions.checkpointEvery = payload.checkpointEvery > 0
                                       ? payload.checkpointEvery
                                       : options_.sweepCheckpointEvery;
    sweepOptions.programVersion = payload.programVersion;
    sweepOptions.stopFlag = &sub->stop;
    sweepOptions.io = io_;
    sweepOptions.fsyncEveryRecord =
        options_.fsyncPolicy == FsyncPolicy::kAlways;

    sim::ShapeSweep sweep(entry.compiled, payload.shapes,
                          sweepOptions);

    const Cycle budget = payload.cycleBudget > 0
                                  ? payload.cycleBudget
                                  : options_.defaultCycleBudget;
    std::vector<sim::RunRequest> requests = payload.requests;
    for (sim::RunRequest& request : requests)
        request.maxCycles =
            std::min<Cycle>(request.maxCycles, budget);

    sim::ShapeSweepResult result = sweep.run(requests);

    if (result.journalError) {
        // The sweep itself is unharmed (journaling latched off and it
        // kept computing), but the disk is suspect: durability is
        // gone until an operator intervenes or a later write works.
        std::lock_guard<std::mutex> lock(mutex_);
        setDegradedLocked("sweep journal " + sub->id + ": " +
                          result.journalErrorText);
    }

    if (!result.complete) {
        bool cancelled = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            cancelled = sub->cancelRequested;
        }
        if (cancelled) {
            finish(sub, SubmissionState::kCancelled,
                   JsonValue::object());
            return;
        }
        // Drain: the sweep parked at its last checkpoint; requeue so
        // a restarted daemon (or this one, were it un-drained)
        // resumes from the journal.
        std::lock_guard<std::mutex> lock(mutex_);
        sub->state = SubmissionState::kWaiting;
        queue_.push_front(sub);
        idleCv_.notify_all();
        return;
    }

    JsonValue rows = JsonValue::array();
    int statusCounts[sim::kNumRunStatuses] = {};
    for (const sim::ShapeSweepRow& row : result.rows) {
        JsonValue r = runResultJson(
            row.result, row.machineDigest);
        r.set("shape", JsonValue::integer(
                           static_cast<std::int64_t>(row.shape)));
        r.set("name",
              JsonValue::str(payload.shapes[row.shape].name));
        r.set("request", JsonValue::integer(
                             static_cast<std::int64_t>(row.request)));
        r.set("from_journal", JsonValue::boolean(row.fromJournal));
        rows.push(std::move(r));
        ++statusCounts[static_cast<int>(row.result.status)];
    }
    JsonValue counts = JsonValue::object();
    for (int i = 0; i < sim::kNumRunStatuses; ++i) {
        if (statusCounts[i] > 0)
            counts.set(
                sim::runStatusName(static_cast<sim::RunStatus>(i)),
                JsonValue::integer(statusCounts[i]));
    }
    JsonValue body = JsonValue::object();
    body.set("rows", std::move(rows));
    body.set("status_counts", std::move(counts));
    body.set("rows_from_journal",
             JsonValue::integer(static_cast<std::int64_t>(
                 result.rowsFromJournal)));
    body.set("sweep_workers",
             JsonValue::integer(result.workersUsed));
    body.set("cached_compile",
             JsonValue::boolean(sub->cachedCompile));
    finish(sub, SubmissionState::kCompleted, std::move(body));
}

// ---------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------

void
SyscommDaemon::acceptLoop()
{
    for (;;) {
        pollfd fds[3];
        int n = 0;
        fds[n++] = pollfd{wakePipe_[0], POLLIN, 0};
        if (unixFd_ >= 0)
            fds[n++] = pollfd{unixFd_, POLLIN, 0};
        if (tcpFd_ >= 0)
            fds[n++] = pollfd{tcpFd_, POLLIN, 0};
        if (::poll(fds, static_cast<nfds_t>(n), -1) < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if ((fds[0].revents & POLLIN) != 0) {
            char byte;
            [[maybe_unused]] ssize_t r =
                ::read(wakePipe_[0], &byte, 1);
            std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_)
                return;
        }
        for (int i = 1; i < n; ++i) {
            if ((fds[i].revents & POLLIN) == 0)
                continue;
            int fd = ::accept(fds[i].fd, nullptr, nullptr);
            if (fd < 0)
                continue;
            std::lock_guard<std::mutex> lock(clientMutex_);
            clientFds_.push_back(fd);
            clientThreads_.emplace_back(&SyscommDaemon::clientLoop,
                                        this, fd);
        }
    }
}

void
SyscommDaemon::clientLoop(int fd)
{
    std::string pending;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break; // disconnect (possibly mid-line; drop the tail)
        }
        pending.append(buf, static_cast<std::size_t>(n));
        bool fatal = false;
        std::size_t pos;
        while ((pos = pending.find('\n')) != std::string::npos) {
            std::string line = pending.substr(0, pos);
            pending.erase(0, pos + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            const std::string response = handleLine(line) + "\n";
            if (!sendAll(fd, response)) {
                fatal = true;
                break;
            }
        }
        if (!fatal && pending.size() > options_.maxLineBytes) {
            // An unterminated line beyond the cap: answer once and
            // hang up rather than buffer without bound.
            sendAll(fd,
                    writeJson(errorResponse("request line too long")) +
                        "\n");
            fatal = true;
        }
        if (fatal)
            break;
    }
    {
        // Mark dead before closing: stop() only shutdown()s live
        // entries, so a recycled fd number can never be hit twice.
        std::lock_guard<std::mutex> lock(clientMutex_);
        auto it =
            std::find(clientFds_.begin(), clientFds_.end(), fd);
        if (it != clientFds_.end())
            *it = -1;
    }
    ::close(fd);
}

std::string
SyscommDaemon::handleLine(const std::string& line)
{
    JsonValue msg;
    std::string err;
    JsonValue response;
    if (line.size() > options_.maxLineBytes) {
        response = errorResponse("request line too long");
    } else if (!parseJson(line, msg, err)) {
        response = errorResponse("parse: " + err);
    } else if (!msg.isObject()) {
        response = errorResponse("request must be a JSON object");
    } else {
        const std::string verbText = msg.getString("verb");
        Verb verb = Verb::kPing;
        if (!parseVerb(verbText, verb)) {
            response = errorResponse(
                verbText.empty() ? "missing 'verb'"
                                 : "unknown verb '" + verbText + "'");
        } else {
            switch (verb) {
              case Verb::kPing:
                response = JsonValue::object()
                               .set("ok", JsonValue::boolean(true))
                               .set("verb", JsonValue::str("ping"));
                break;
              case Verb::kSubmit:
                response = handleSubmit(msg, line);
                break;
              case Verb::kStatus:
                response = handleStatus(msg);
                break;
              case Verb::kResult:
                response = handleResult(msg);
                break;
              case Verb::kCancel:
                response = handleCancel(msg);
                break;
              case Verb::kDrain:
                response = handleDrain();
                break;
              case Verb::kStats:
                response = statsJson();
                break;
              case Verb::kLint:
                response = handleLint(msg);
                break;
            }
        }
    }
    const JsonValue* tag = msg.find("tag");
    if (tag != nullptr)
        response.set("tag", *tag);
    return writeJson(response);
}

JsonValue
SyscommDaemon::handleSubmit(const JsonValue& msg,
                            const std::string& line)
{
    const ServiceWant want = control_.get();
    if (want != ServiceWant::kServe && want != ServiceWant::kReload) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++rejectedDraining_;
        return rejectResponse("draining",
                              "daemon is not accepting submissions");
    }

    auto sub = std::make_unique<Sub>();
    std::string err;
    if (!parseSubmission(msg, sub->payload, err)) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++rejectedBadRequest_;
        return rejectResponse("bad_request", err);
    }
    sub->payloadValid = true;
    sub->rawLine = line;

    // Admission-time static analysis (--lint). Runs before the daemon
    // lock — the compile cache carries its own locking and in-flight
    // dedup, so N concurrent submits of one program still pay for one
    // compile+analysis, and the worker's later cache get() for an
    // admitted submission is a pure hit (zero simulation cycles are
    // ever spent on an enforce-rejected program). An idempotent retry
    // of an already-admitted key must stay a read even under enforce,
    // so the index is probed first and re-checked at admission.
    if (options_.lintMode != DaemonOptions::LintMode::kOff) {
        const Submission& p = sub->payload;
        if (!p.idempotencyKey.empty()) {
            std::lock_guard<std::mutex> lock(mutex_);
            auto known = idempotency_.find(p.idempotencyKey);
            if (known != idempotency_.end()) {
                auto existing = subs_.find(known->second);
                if (existing != subs_.end()) {
                    JsonValue response = JsonValue::object();
                    response.set("ok", JsonValue::boolean(true));
                    response.set("id", JsonValue::str(known->second));
                    response.set("state",
                                 JsonValue::str(submissionStateName(
                                     existing->second->state)));
                    response.set("deduplicated",
                                 JsonValue::boolean(true));
                    return response;
                }
            }
        }
        // A sweep is analyzed at its most generously buffered rung: a
        // deadlock witness holds a fortiori at every smaller capacity
        // (the R2 bound shrinks monotonically), so if the best rung
        // wedges, the whole ladder does.
        const sim::ShapeSpec* best = &p.shapes[0];
        for (const sim::ShapeSpec& shape : p.shapes) {
            if (shape.queueCapacity + shape.extensionCapacity >
                best->queueCapacity + best->extensionCapacity)
                best = &shape;
        }
        const std::uint64_t compileKey = CompileCache::keyFor(
            p.program, p.topo, p.programVersion);
        bool wasHit = false;
        CachedProgram entry =
            cache_.get(compileKey, Program(p.program),
                       SharedTopology(Topology(p.topo)), &wasHit);
        if (entry.compiled->valid()) {
            MachineSpec spec;
            spec.topo = entry.compiled->sharedTopo();
            spec.queuesPerLink = best->queuesPerLink;
            spec.queueCapacity = best->queueCapacity;
            spec.extensionCapacity = best->extensionCapacity;
            std::shared_ptr<const AnalysisReport> report =
                entry.compiled->analysis(spec);
            if (options_.lintMode == DaemonOptions::LintMode::kEnforce &&
                report->verdict == LintVerdict::kDeadlock) {
                JsonValue response = rejectResponse(
                    "lint", "statically deadlocked: " +
                                report->witness.str(p.program));
                response.set("lint", lintReportJson(*report, p.program));
                std::lock_guard<std::mutex> lock(mutex_);
                ++rejectedLint_;
                return response;
            }
            if (!report->diagnostics.empty() ||
                report->verdict != LintVerdict::kCertified) {
                sub->lint = lintReportJson(*report, p.program);
                sub->hasLint = true;
            }
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    // Idempotent resubmission: a key we have already admitted (this
    // life or a previous one — the index is rebuilt from the spool)
    // answers with the original id instead of running the work twice.
    // Checked before every other rejection: a retry of an admitted
    // submission must succeed even degraded or queue-full, it is a
    // read.
    const std::string& key = sub->payload.idempotencyKey;
    if (!key.empty()) {
        auto known = idempotency_.find(key);
        if (known != idempotency_.end()) {
            auto existing = subs_.find(known->second);
            if (existing != subs_.end()) {
                JsonValue response = JsonValue::object();
                response.set("ok", JsonValue::boolean(true));
                response.set("id", JsonValue::str(known->second));
                response.set(
                    "state",
                    JsonValue::str(submissionStateName(
                        existing->second->state)));
                response.set("deduplicated",
                             JsonValue::boolean(true));
                return response;
            }
        }
    }
    if (degraded_) {
        // Reject-new/serve-reads mode: the spool cannot persist new
        // work, and an unspooled admission would break the "an id we
        // returned survives a restart" contract.
        ++rejectedDegraded_;
        return rejectResponse(
            "degraded",
            "spool is failing (" + degradedReason_ +
                "); serving reads only");
    }
    // Admission control: a full queue answers "queue_full" NOW —
    // clients never block on a silent backlog.
    if (queue_.size() >= options_.maxQueue) {
        ++rejectedQueueFull_;
        return rejectResponse(
            "queue_full",
            "admission queue is full (depth " +
                std::to_string(queue_.size()) + ")");
    }
    const std::string id = makeId(nextId_++);
    sub->id = id;
    if (!options_.spoolDir.empty()) {
        if (sub->payload.isSweep)
            sub->journalPath = spoolFile(id, kJournalSuffix);
        // Persist before acknowledging: an id we returned must be an
        // id a restarted daemon still knows.
        std::string ioErr;
        if (!writeFileAtomicIo(*io_, spoolFile(id, kSubSuffix), line,
                               options_.fsyncPolicy, ioErr)) {
            --nextId_;
            setDegradedLocked("spool write: " + ioErr);
            return rejectResponse("spool_error",
                                  "cannot persist submission: " +
                                      ioErr);
        }
        clearDegradedLocked();
    }
    sub->idempotencyKey = key;
    if (!key.empty())
        idempotency_.emplace(key, id);
    Sub* raw = sub.get();
    subs_.emplace(id, std::move(sub));
    queue_.push_back(raw);
    workCv_.notify_one();

    JsonValue response = JsonValue::object();
    response.set("ok", JsonValue::boolean(true));
    response.set("id", JsonValue::str(id));
    response.set("state", JsonValue::str(submissionStateName(
                              SubmissionState::kWaiting)));
    response.set("description",
                 JsonValue::str(submissionStateDescription(
                     SubmissionState::kWaiting)));
    return response;
}

JsonValue
SyscommDaemon::handleLint(const JsonValue& msg)
{
    LintRequest req;
    std::string err;
    if (!parseLintRequest(msg, req, err))
        return errorResponse(err);
    // Same cache, same digest a submit of this payload would use: a
    // lint followed by a submit compiles once, and the memoized
    // analysis on the CompiledProgram makes repeat lints free.
    const std::uint64_t key = CompileCache::keyFor(
        req.program, req.topo, req.programVersion);
    bool wasHit = false;
    CachedProgram entry =
        cache_.get(key, Program(req.program),
                   SharedTopology(Topology(req.topo)), &wasHit);
    MachineSpec spec;
    spec.topo = entry.compiled->sharedTopo();
    spec.queuesPerLink = req.shape.queuesPerLink;
    spec.queueCapacity = req.shape.queueCapacity;
    spec.extensionCapacity = req.shape.extensionCapacity;
    std::shared_ptr<const AnalysisReport> report =
        entry.compiled->analysis(spec);
    JsonValue response = JsonValue::object();
    response.set("ok", JsonValue::boolean(true));
    response.set("cached_compile", JsonValue::boolean(wasHit));
    response.set("digest", JsonValue::str(hexDigest(key)));
    response.set("lint",
                 lintReportJson(*report, entry.compiled->program()));
    return response;
}

bool
SyscommDaemon::journalProgress(const Sub& sub, JsonValue& out)
{
    if (sub.journalPath.empty())
        return false;
    sim::SweepJournalInfo info;
    if (!sim::inspectSweepJournal(sub.journalPath, info))
        return false;
    out = JsonValue::object();
    out.set("rows_done", JsonValue::integer(static_cast<std::int64_t>(
                             info.rowsDone)));
    JsonValue inflight = JsonValue::array();
    for (const sim::SweepJournalRow& row : info.inflight) {
        JsonValue r = JsonValue::object();
        r.set("shape", JsonValue::integer(
                           static_cast<std::int64_t>(row.shape)));
        r.set("request", JsonValue::integer(
                             static_cast<std::int64_t>(row.request)));
        r.set("cycles", JsonValue::integer(row.info.cycles));
        r.set("kernel", JsonValue::str(row.info.eventKernel
                                           ? "event"
                                           : "reference"));
        r.set("machine_digest",
              JsonValue::str(hexDigest(row.info.machineDigest)));
        inflight.push(std::move(r));
    }
    out.set("inflight", std::move(inflight));
    return true;
}

JsonValue
SyscommDaemon::handleStatus(const JsonValue& msg)
{
    const std::string id = msg.getString("id");
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = subs_.find(id);
    if (it == subs_.end())
        return errorResponse("unknown id '" + id + "'");
    const Sub& sub = *it->second;
    JsonValue response = JsonValue::object();
    response.set("ok", JsonValue::boolean(true));
    response.set("id", JsonValue::str(id));
    response.set("state",
                 JsonValue::str(submissionStateName(sub.state)));
    response.set("description",
                 JsonValue::str(submissionStateDescription(sub.state)));
    response.set("terminal", JsonValue::boolean(
                                 submissionStateTerminal(sub.state)));
    if (sub.state == SubmissionState::kRunning &&
        sub.payloadValid && !sub.payload.isSweep)
        response.set("cycles", JsonValue::integer(sub.executedCycles));
    // Journal-backed progress for a sweep, live or parked: rows done
    // plus each in-flight row's checkpoint header. Reading the
    // journal while the sweep appends is safe — a torn tail parses
    // as "everything sound before it", same as a resume would see.
    JsonValue progress;
    if (!submissionStateTerminal(sub.state) &&
        journalProgress(sub, progress))
        response.set("progress", std::move(progress));
    return response;
}

JsonValue
SyscommDaemon::handleResult(const JsonValue& msg)
{
    const std::string id = msg.getString("id");
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = subs_.find(id);
    if (it == subs_.end())
        return errorResponse("unknown id '" + id + "'");
    const Sub& sub = *it->second;
    if (!submissionStateTerminal(sub.state)) {
        JsonValue response = errorResponse("not finished");
        response.set("id", JsonValue::str(id));
        response.set("state",
                     JsonValue::str(submissionStateName(sub.state)));
        return response;
    }
    JsonValue response = JsonValue::object();
    response.set("ok", JsonValue::boolean(true));
    response.set("id", JsonValue::str(id));
    response.set("state",
                 JsonValue::str(submissionStateName(sub.state)));
    response.set("result", sub.result);
    return response;
}

JsonValue
SyscommDaemon::handleCancel(const JsonValue& msg)
{
    const std::string id = msg.getString("id");
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = subs_.find(id);
    if (it == subs_.end())
        return errorResponse("unknown id '" + id + "'");
    Sub& sub = *it->second;
    JsonValue response = JsonValue::object();
    if (submissionStateTerminal(sub.state)) {
        response.set("ok", JsonValue::boolean(false));
        response.set("error", JsonValue::str("already terminal"));
        response.set("state",
                     JsonValue::str(submissionStateName(sub.state)));
        return response;
    }
    if (sub.state == SubmissionState::kWaiting) {
        queue_.erase(std::remove(queue_.begin(), queue_.end(), &sub),
                     queue_.end());
        sub.state = SubmissionState::kCancelled;
        sub.result = JsonValue::object();
        writeDoneMarker(sub);
        idleCv_.notify_all();
    } else {
        // In flight: ask it to stop; the worker finishes the
        // transition at its next slice/checkpoint.
        sub.cancelRequested = true;
        sub.stop.store(true, std::memory_order_relaxed);
    }
    response.set("ok", JsonValue::boolean(true));
    response.set("id", JsonValue::str(id));
    response.set("state",
                 JsonValue::str(submissionStateName(sub.state)));
    return response;
}

JsonValue
SyscommDaemon::handleDrain()
{
    requestDrain();
    JsonValue response = JsonValue::object();
    response.set("ok", JsonValue::boolean(true));
    response.set("control", JsonValue::str(control_.status()));
    return response;
}

JsonValue
SyscommDaemon::statsJson()
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonValue response = JsonValue::object();
    response.set("ok", JsonValue::boolean(true));
    response.set("control", JsonValue::str(control_.status()));

    int counts[kNumSubmissionStates] = {};
    for (const auto& [id, sub] : subs_)
        ++counts[static_cast<int>(sub->state)];
    JsonValue states = JsonValue::object();
    for (int i = 0; i < kNumSubmissionStates; ++i)
        states.set(
            submissionStateName(static_cast<SubmissionState>(i)),
            JsonValue::integer(counts[i]));
    response.set("submissions", std::move(states));

    JsonValue queue = JsonValue::object();
    queue.set("depth", JsonValue::integer(
                           static_cast<std::int64_t>(queue_.size())));
    queue.set("capacity",
              JsonValue::integer(
                  static_cast<std::int64_t>(options_.maxQueue)));
    queue.set("rejected_queue_full",
              JsonValue::integer(
                  static_cast<std::int64_t>(rejectedQueueFull_)));
    queue.set("rejected_bad_request",
              JsonValue::integer(
                  static_cast<std::int64_t>(rejectedBadRequest_)));
    queue.set("rejected_draining",
              JsonValue::integer(
                  static_cast<std::int64_t>(rejectedDraining_)));
    queue.set("rejected_degraded",
              JsonValue::integer(
                  static_cast<std::int64_t>(rejectedDegraded_)));
    queue.set("rejected_lint",
              JsonValue::integer(
                  static_cast<std::int64_t>(rejectedLint_)));
    response.set("queue", std::move(queue));

    response.set("lint_mode",
                 JsonValue::str(lintModeName(options_.lintMode)));

    response.set("degraded", JsonValue::boolean(degraded_));
    if (degraded_)
        response.set("degraded_reason",
                     JsonValue::str(degradedReason_));
    response.set("watchdog_fired",
                 JsonValue::integer(
                     static_cast<std::int64_t>(watchdogFired_)));

    const CompileCache::Stats cacheStats = cache_.stats();
    JsonValue cache = JsonValue::object();
    cache.set("entries", JsonValue::integer(static_cast<std::int64_t>(
                             cacheStats.entries)));
    cache.set("capacity", JsonValue::integer(static_cast<std::int64_t>(
                              cacheStats.capacity)));
    cache.set("hits", JsonValue::integer(
                          static_cast<std::int64_t>(cacheStats.hits)));
    cache.set("misses",
              JsonValue::integer(
                  static_cast<std::int64_t>(cacheStats.misses)));
    cache.set("evictions",
              JsonValue::integer(
                  static_cast<std::int64_t>(cacheStats.evictions)));
    response.set("cache", std::move(cache));

    // Journal progress of every non-terminal sweep — how a drained
    // (or killed-and-restarted) daemon reports parked work without
    // opening a single session.
    JsonValue sweeps = JsonValue::array();
    for (const auto& [id, sub] : subs_) {
        if (submissionStateTerminal(sub->state))
            continue;
        JsonValue progress;
        if (!journalProgress(*sub, progress))
            continue;
        JsonValue entry = JsonValue::object();
        entry.set("id", JsonValue::str(id));
        entry.set("state",
                  JsonValue::str(submissionStateName(sub->state)));
        entry.set("progress", std::move(progress));
        sweeps.push(std::move(entry));
    }
    response.set("sweeps", std::move(sweeps));
    return response;
}

} // namespace syscomm::serve
