#include "serve/lint.h"

namespace syscomm::serve {

JsonValue lintDiagnosticJson(const Diagnostic& diagnostic,
                             const Program& program)
{
    JsonValue d = JsonValue::object();
    d.set("severity", JsonValue::str(severityName(diagnostic.severity)));
    d.set("rule", JsonValue::str(lintRuleId(diagnostic.rule)));
    if (diagnostic.cell != kInvalidCell)
        d.set("cell", JsonValue::integer(diagnostic.cell));
    if (diagnostic.op >= 0)
        d.set("op", JsonValue::integer(diagnostic.op));
    if (diagnostic.msg != kInvalidMessage &&
        diagnostic.msg < program.numMessages())
        d.set("msg", JsonValue::str(program.message(diagnostic.msg).name));
    if (diagnostic.link != kInvalidLink)
        d.set("link", JsonValue::integer(diagnostic.link));
    d.set("text", JsonValue::str(diagnostic.text));
    return d;
}

JsonValue lintReportJson(const AnalysisReport& report,
                         const Program& program)
{
    JsonValue out = JsonValue::object();
    out.set("verdict", JsonValue::str(lintVerdictName(report.verdict)));

    JsonValue shape = JsonValue::object();
    shape.set("queues", JsonValue::integer(report.shape.queuesPerLink));
    shape.set("capacity", JsonValue::integer(report.shape.queueCapacity));
    shape.set("extension",
              JsonValue::integer(report.shape.extensionCapacity));
    out.set("shape", std::move(shape));

    JsonValue diags = JsonValue::array();
    for (const Diagnostic& d : report.diagnostics)
        diags.push(lintDiagnosticJson(d, program));
    out.set("diagnostics", std::move(diags));

    if (!report.witness.empty())
    {
        JsonValue witness = JsonValue::object();
        JsonValue cycle = JsonValue::array();
        for (const WitnessEntry& e : report.witness.cycle)
        {
            JsonValue entry = JsonValue::object();
            entry.set("cell", JsonValue::integer(e.cell));
            entry.set("op", JsonValue::integer(e.op));
            if (e.msg != kInvalidMessage && e.msg < program.numMessages())
                entry.set("msg",
                          JsonValue::str(program.message(e.msg).name));
            entry.set("kind", JsonValue::str(e.isWrite ? "write" : "read"));
            entry.set("waits_for", JsonValue::integer(e.waitsFor));
            cycle.push(std::move(entry));
        }
        witness.set("cycle", std::move(cycle));
        witness.set("blocked_cells",
                    JsonValue::integer(report.witness.blockedCells));
        out.set("witness", std::move(witness));
    }

    out.set("min_uniform_capacity",
            JsonValue::integer(report.minUniformCapacity));
    out.set("min_uniform_skip_bound",
            JsonValue::integer(report.minUniformSkipBound));
    out.set("basic_deadlock_free",
            JsonValue::boolean(report.basicDeadlockFree));
    out.set("labeling", JsonValue::str(report.labelingFellBack
                                           ? "trivial"
                                           : "section6"));
    out.set("labels_consistent",
            JsonValue::boolean(report.labelsConsistent));
    out.set("feasible", JsonValue::boolean(report.feasibleAtShape));
    out.set("required_queues_per_link",
            JsonValue::integer(report.requiredQueuesPerLink));
    return out;
}

} // namespace syscomm::serve
