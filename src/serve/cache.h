#pragma once

/**
 * @file
 * The daemon's compiled-program cache: compile once across clients.
 *
 * Program-side compilation (validation, the competing-message
 * analysis, labeling, route tables) depends only on the program
 * structure and the topology — not on machine shapes, seeds or
 * policies — so N submissions of the same program over the same graph
 * should pay for exactly one CompiledProgram build no matter how they
 * interleave. The cache keys on a structural digest, keeps a bounded
 * LRU of built entries, and dedups *in-flight* builds with a shared
 * future: concurrent submissions of a new program all wait on the one
 * build instead of racing N compiles (tests assert this with
 * CompiledProgram::buildCount()).
 *
 * Each entry owns its Program copy — a CompiledProgram references the
 * Program it was built from, and cached entries outlive the
 * submissions that created them, so the cache can never hand out an
 * analysis whose program has been freed. Submissions run against the
 * cache's Program (structurally identical to what they sent).
 */

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/program.h"
#include "core/topology.h"
#include "sim/session.h"

namespace syscomm::serve {

/** A cache entry: the pinned Program and its compiled analyses. */
struct CachedProgram
{
    std::shared_ptr<const Program> program;
    std::shared_ptr<const sim::CompiledProgram> compiled;

    bool valid() const { return program != nullptr; }
};

class CompileCache
{
  public:
    /** @p capacity built entries are retained, LRU-evicted. */
    explicit CompileCache(std::size_t capacity);

    /**
     * Cache key: FNV over the program structure (cells, message
     * lengths, op kinds/messages — compute callbacks are code and
     * cannot be hashed; @p version is the caller's escape hatch, see
     * ShapeSweepOptions::programVersion) and the topology's cells and
     * links.
     */
    static std::uint64_t keyFor(const Program& program,
                                const Topology& topo,
                                const std::string& version);

    /**
     * Fetch the entry for @p key, building it from (@p program,
     * @p topo) on the first miss. Concurrent callers with the same
     * key share one build: exactly one of them compiles, the rest
     * block on its result (a hit on an in-flight build counts as a
     * hit). @p program is consumed only by the caller that builds.
     *
     * An entry whose program failed validation is cached like any
     * other — the failure is deterministic, so re-compiling it for
     * the next client would buy nothing; callers check
     * compiled->valid().
     *
     * @p wasHit, when non-null, reports whether this call was served
     * from the cache (including a wait on an in-flight build).
     */
    CachedProgram get(std::uint64_t key, Program&& program,
                      SharedTopology topo, bool* wasHit = nullptr);

    /** Peek without building; invalid CachedProgram on miss. Counts
     *  neither a hit nor a miss (it is the status path, not the
     *  admission path). */
    CachedProgram peek(std::uint64_t key) const;

    struct Stats
    {
        std::size_t entries = 0;
        std::size_t capacity = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    Stats stats() const;

  private:
    struct Entry
    {
        CachedProgram value;
        /** Position in lru_ (most-recent at front). */
        std::list<std::uint64_t>::iterator lruPos;
    };

    mutable std::mutex mutex_;
    std::size_t capacity_;
    std::unordered_map<std::uint64_t, Entry> entries_;
    std::list<std::uint64_t> lru_;
    /** Builds in progress; waiters share the builder's future. */
    std::unordered_map<std::uint64_t,
                       std::shared_future<CachedProgram>>
        inflight_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace syscomm::serve
