#pragma once

/**
 * @file
 * Client side of the syscommd line-JSON protocol: a blocking
 * one-request/one-response connection plus typed helpers for each
 * verb. The CLI (tools/syscomm_cli.cpp), the protocol tests, and the
 * serving bench all talk through this; anything else that can open a
 * socket and write JSON lines interoperates just as well — that is
 * the point of a text protocol.
 *
 * Both the JSON protocol and the daemon's on-disk formats are
 * host-portable: since format v3 the sweep journals and checkpoint
 * streams are fixed little-endian (sim/serial.h), so a spool
 * directory written on one host resumes on any other.
 *
 * Resilience: connect/read deadlines (setTimeouts), plus
 * submitWithRetry / waitTerminalRetry — exponential backoff with
 * deterministic jitter, automatic reconnection, and idempotency-key
 * deduplication, so a submission survives a daemon SIGKILL+restart
 * without running twice.
 */

#include <cstdint>
#include <string>

#include "serve/json.h"

namespace syscomm::serve {

/** Backoff schedule for the retrying helpers. */
struct RetryOptions
{
    /** Total tries (first attempt included). */
    int maxAttempts = 5;
    /** First backoff sleep; doubles each retry. */
    int baseDelayMs = 20;
    /** Backoff ceiling. */
    int maxDelayMs = 1000;
    /** Seeds the deterministic jitter (tests pin it). */
    std::uint64_t jitterSeed = 1;
};

class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient&) = delete;
    ServeClient& operator=(const ServeClient&) = delete;

    bool connectUnix(const std::string& path, std::string& error);
    bool connectTcp(const std::string& host, int port,
                    std::string& error);
    void close();
    bool connected() const { return fd_ >= 0; }

    /**
     * Deadlines for connect and for each send/recv, in milliseconds
     * (0 = block forever, the default). Applies to subsequent
     * connects; a read that trips the deadline fails the round trip
     * with a "timeout" error instead of hanging waitTerminal forever
     * on a daemon that died mid-response.
     */
    void setTimeouts(int connectMs, int ioMs);

    /**
     * Re-establish the last connectUnix/connectTcp endpoint (the
     * retrying helpers call this after a transport failure).
     */
    bool reconnect(std::string& error);

    /**
     * Send one raw line (newline appended) and read one response
     * line. The transport primitive everything below uses; tests
     * also use it directly to send malformed bytes.
     */
    bool roundTrip(const std::string& line, std::string& responseLine,
                   std::string& error);

    /** roundTrip with JSON encode/decode on both ends. */
    bool request(const JsonValue& message, JsonValue& response,
                 std::string& error);

    // Typed verbs. Each returns false on transport/parse failure;
    // protocol-level rejection ("ok": false) is the caller's to read
    // out of @p response.
    bool ping(JsonValue& response, std::string& error);
    /** @p submission: the submit body (fields beside "verb"). On
     *  success @p id carries the daemon-assigned submission id ("" if
     *  the daemon rejected the submission). */
    bool submit(const JsonValue& submission, std::string& id,
                JsonValue& response, std::string& error);
    bool status(const std::string& id, JsonValue& response,
                std::string& error);
    bool result(const std::string& id, JsonValue& response,
                std::string& error);
    bool cancel(const std::string& id, JsonValue& response,
                std::string& error);
    bool drain(JsonValue& response, std::string& error);
    bool stats(JsonValue& response, std::string& error);

    /**
     * Poll status until the submission reaches a terminal state (or
     * any "waiting" state when @p stopOnParked — note a freshly
     * admitted submission is also "waiting", so use that flag only
     * after a drain was requested). @p response holds the last
     * status response. False on timeout or transport failure.
     */
    bool waitTerminal(const std::string& id, int timeoutMs,
                      JsonValue& response, std::string& error,
                      bool stopOnParked = false);

    /**
     * submit with reconnect + exponential backoff. Retries transport
     * failures and the retryable rejections (queue_full, degraded,
     * spool_error); bad_request and draining are final. Give the
     * submission an "idempotency_key" — that is what makes a retry
     * after a lost ack safe (the daemon answers the original id
     * instead of admitting a duplicate).
     */
    bool submitWithRetry(const JsonValue& submission,
                         const RetryOptions& retry, std::string& id,
                         JsonValue& response, std::string& error);

    /**
     * waitTerminal that survives the daemon dying and coming back:
     * transport failures reconnect with backoff and polling resumes,
     * until @p timeoutMs expires overall. With a spooled daemon the
     * restarted process re-admits the id, so the poll converges on
     * the same terminal result the uninterrupted daemon would give.
     */
    bool waitTerminalRetry(const std::string& id, int timeoutMs,
                           const RetryOptions& retry,
                           JsonValue& response, std::string& error);

    /**
     * Raw byte escape hatches for the robustness tests: send without
     * framing (sendBytes) and slam the connection mid-write
     * (closeAbruptly == close; the abruptness is in when you call it).
     */
    bool sendBytes(const std::string& bytes);
    int fd() const { return fd_; }

  private:
    enum class Endpoint : std::uint8_t { kNone, kUnix, kTcp };

    bool readLine(std::string& line, std::string& error);
    bool finishConnect(std::string& error);
    void applyIoTimeout();

    int fd_ = -1;
    std::string pending_;
    int connectTimeoutMs_ = 0;
    int ioTimeoutMs_ = 0;
    Endpoint endpoint_ = Endpoint::kNone;
    std::string endpointPath_; ///< unix path or TCP host
    int endpointPort_ = -1;
};

} // namespace syscomm::serve
