#pragma once

/**
 * @file
 * Client side of the syscommd line-JSON protocol: a blocking
 * one-request/one-response connection plus typed helpers for each
 * verb. The CLI (tools/syscomm_cli.cpp), the protocol tests, and the
 * serving bench all talk through this; anything else that can open a
 * socket and write JSON lines interoperates just as well — that is
 * the point of a text protocol.
 *
 * Wire caveat for remote (TCP) clients: the daemon's sweep journals
 * and checkpoint streams are NATIVE-ENDIAN host formats (see
 * sim/serial.h) — the JSON protocol itself is portable, but a spool
 * directory only resumes on a host of the same endianness and type
 * widths as the daemon that wrote it.
 */

#include <string>

#include "serve/json.h"

namespace syscomm::serve {

class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient&) = delete;
    ServeClient& operator=(const ServeClient&) = delete;

    bool connectUnix(const std::string& path, std::string& error);
    bool connectTcp(const std::string& host, int port,
                    std::string& error);
    void close();
    bool connected() const { return fd_ >= 0; }

    /**
     * Send one raw line (newline appended) and read one response
     * line. The transport primitive everything below uses; tests
     * also use it directly to send malformed bytes.
     */
    bool roundTrip(const std::string& line, std::string& responseLine,
                   std::string& error);

    /** roundTrip with JSON encode/decode on both ends. */
    bool request(const JsonValue& message, JsonValue& response,
                 std::string& error);

    // Typed verbs. Each returns false on transport/parse failure;
    // protocol-level rejection ("ok": false) is the caller's to read
    // out of @p response.
    bool ping(JsonValue& response, std::string& error);
    /** @p submission: the submit body (fields beside "verb"). On
     *  success @p id carries the daemon-assigned submission id ("" if
     *  the daemon rejected the submission). */
    bool submit(const JsonValue& submission, std::string& id,
                JsonValue& response, std::string& error);
    bool status(const std::string& id, JsonValue& response,
                std::string& error);
    bool result(const std::string& id, JsonValue& response,
                std::string& error);
    bool cancel(const std::string& id, JsonValue& response,
                std::string& error);
    bool drain(JsonValue& response, std::string& error);
    bool stats(JsonValue& response, std::string& error);

    /**
     * Poll status until the submission reaches a terminal state (or
     * any "waiting" state when @p stopOnParked — note a freshly
     * admitted submission is also "waiting", so use that flag only
     * after a drain was requested). @p response holds the last
     * status response. False on timeout or transport failure.
     */
    bool waitTerminal(const std::string& id, int timeoutMs,
                      JsonValue& response, std::string& error,
                      bool stopOnParked = false);

    /**
     * Raw byte escape hatches for the robustness tests: send without
     * framing (sendBytes) and slam the connection mid-write
     * (closeAbruptly == close; the abruptness is in when you call it).
     */
    bool sendBytes(const std::string& bytes);
    int fd() const { return fd_; }

  private:
    bool readLine(std::string& line, std::string& error);

    int fd_ = -1;
    std::string pending_;
};

} // namespace syscomm::serve
