#include "serve/cache.h"

#include "sim/fnv.h"

namespace syscomm::serve {

CompileCache::CompileCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

std::uint64_t
CompileCache::keyFor(const Program& program, const Topology& topo,
                     const std::string& version)
{
    using sim::fnv;
    std::uint64_t h = sim::kFnvOffsetBasis;
    h = fnv(h, static_cast<std::uint64_t>(program.numCells()));
    h = fnv(h, static_cast<std::uint64_t>(program.numMessages()));
    for (MessageId m = 0; m < program.numMessages(); ++m)
        h = fnv(h,
                static_cast<std::uint64_t>(program.messageLength(m)));
    for (CellId c = 0; c < program.numCells(); ++c) {
        const std::vector<Op>& ops = program.cellOps(c);
        h = fnv(h, ops.size());
        for (const Op& op : ops) {
            h = fnv(h, static_cast<std::uint64_t>(op.kind));
            h = fnv(h, static_cast<std::uint64_t>(op.msg));
        }
    }
    h = fnv(h, version.size());
    for (char c : version)
        h = fnv(h, static_cast<std::uint8_t>(c));
    h = fnv(h, static_cast<std::uint64_t>(topo.numCells()));
    h = fnv(h, static_cast<std::uint64_t>(topo.numLinks()));
    for (LinkIndex l = 0; l < topo.numLinks(); ++l) {
        h = fnv(h, static_cast<std::uint64_t>(topo.link(l).a));
        h = fnv(h, static_cast<std::uint64_t>(topo.link(l).b));
    }
    return h;
}

CachedProgram
CompileCache::get(std::uint64_t key, Program&& program,
                  SharedTopology topo, bool* wasHit)
{
    if (wasHit != nullptr)
        *wasHit = true;
    std::shared_future<CachedProgram> wait;
    std::promise<CachedProgram> build;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto hit = entries_.find(key);
        if (hit != entries_.end()) {
            ++hits_;
            lru_.splice(lru_.begin(), lru_, hit->second.lruPos);
            return hit->second.value;
        }
        auto pending = inflight_.find(key);
        if (pending != inflight_.end()) {
            // Someone is already compiling this very program: a hit
            // from the sharing perspective — we pay a wait, not a
            // build.
            ++hits_;
            wait = pending->second;
        } else {
            ++misses_;
            if (wasHit != nullptr)
                *wasHit = false;
            inflight_.emplace(key, build.get_future().share());
        }
    }
    if (wait.valid())
        return wait.get();

    // We own the build (outside the lock: compiles take milliseconds
    // to seconds and must not serialize the whole daemon).
    auto pinned = std::make_shared<const Program>(std::move(program));
    CachedProgram value;
    value.program = pinned;
    value.compiled = sim::CompiledProgram::compile(*pinned, topo);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        lru_.push_front(key);
        entries_[key] = Entry{value, lru_.begin()};
        while (entries_.size() > capacity_) {
            std::uint64_t victim = lru_.back();
            lru_.pop_back();
            entries_.erase(victim);
            ++evictions_;
        }
        inflight_.erase(key);
    }
    // Waiters hold shared_ptrs after get(); eviction above only drops
    // the cache's reference, never a client's.
    build.set_value(value);
    return value;
}

CachedProgram
CompileCache::peek(std::uint64_t key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto hit = entries_.find(key);
    return hit != entries_.end() ? hit->second.value : CachedProgram{};
}

CompileCache::Stats
CompileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats out;
    out.entries = entries_.size();
    out.capacity = capacity_;
    out.hits = hits_;
    out.misses = misses_;
    out.evictions = evictions_;
    return out;
}

} // namespace syscomm::serve
