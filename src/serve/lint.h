#pragma once

/**
 * @file
 * JSON rendering for simlint AnalysisReports (core/analyze.h).
 *
 * Lives in serve (not core) so the analyzer stays free of the JSON
 * dependency; the daemon's `lint` verb, the `--lint` admission gate
 * and `syscomm-cli lint` all emit this schema. Documented in
 * docs/protocol.md ("Static analysis").
 */

#include "core/analyze.h"
#include "core/program.h"
#include "serve/json.h"

namespace syscomm::serve {

/** One diagnostic as {"severity","rule","text", cell?, op?, msg?, link?}. */
JsonValue lintDiagnosticJson(const Diagnostic& diagnostic,
                             const Program& program);

/**
 * The full report:
 * {"verdict","shape":{...},"diagnostics":[...],"witness":{...}?,
 *  "min_uniform_capacity","min_uniform_skip_bound",
 *  "basic_deadlock_free","labeling","labels_consistent",
 *  "feasible","required_queues_per_link"}.
 */
JsonValue lintReportJson(const AnalysisReport& report,
                         const Program& program);

} // namespace syscomm::serve
