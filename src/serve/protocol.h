#pragma once

/**
 * @file
 * The syscommd wire protocol: verbs, the submission payload, and the
 * per-submission lifecycle state machine.
 *
 * Transport is newline-delimited JSON over a Unix or TCP stream
 * socket: one request object per line, one response object per line,
 * answered in order (docs/protocol.md is the authoritative wire
 * description). This header is the shared vocabulary — the daemon
 * parses requests through it, the client library and CLI build them
 * through it, and the tests speak it raw to probe the error paths.
 *
 * Submissions travel as (program text, topology spec, shape ladder,
 * run requests): everything needed to reconstruct the simulation on
 * the daemon side from plain data. Programs use the text/ format the
 * parser and printer already round-trip; compute callbacks cannot
 * cross a socket, so served programs are transfer-op programs — which
 * is exactly the class the sweep journal can resume bit-identically
 * (see ShapeSweepOptions::programVersion's caveat).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/program.h"
#include "core/topology.h"
#include "serve/json.h"
#include "sim/session.h"
#include "sim/shape_sweep.h"

namespace syscomm::serve {

/** Protocol verbs (the "verb" member of every request line). */
enum class Verb : std::uint8_t
{
    kPing = 0,
    kSubmit,
    kStatus,
    kResult,
    kCancel,
    kDrain,
    kStats,
    kLint,
};

/** Wire name of a verb ("ping", "submit", ...). */
const char* verbName(Verb verb);

/** Parse a wire name; false on an unknown verb. */
bool parseVerb(const std::string& name, Verb& out);

/**
 * Lifecycle of one submission. Deterministic forward-only machine:
 *
 *   waiting -> compiling -> running -> {completed, deadlocked,
 *                                       faulted, budget-exhausted,
 *                                       error}
 *
 * plus three states reachable out of band: kRejected (admission
 * control refused it — it never entered the queue), kCancelled
 * (cancel verb), and back to kWaiting from kRunning when a drain
 * parks a journaled sweep (the one legal backward edge: the work is
 * requeued, not lost, and a restarted daemon resumes it).
 */
enum class SubmissionState : std::uint8_t
{
    kWaiting = 0, ///< Admitted, queued behind earlier submissions.
    kCompiling,   ///< A worker is building/fetching the CompiledProgram.
    kRunning,     ///< Executing (runs in slices, sweeps row by row).
    kCompleted,   ///< Terminal: ran to its natural end.
    kDeadlocked,  ///< Terminal: the simulated machine deadlocked.
    kFaulted,     ///< Terminal: injected faults froze the machine.
    kBudget,      ///< Terminal: service cycle budget exhausted.
    kRejected,    ///< Terminal: refused at admission (queue_full, ...).
    kCancelled,   ///< Terminal: cancelled by a client.
    kError,       ///< Terminal: invalid payload or config error.
};

inline constexpr int kNumSubmissionStates = 10;

/** Wire name: "waiting", "compiling", ..., "budget-exhausted". */
const char* submissionStateName(SubmissionState state);

/** Parse a wire name; false on an unknown state. */
bool parseSubmissionState(const std::string& name, SubmissionState& out);

/**
 * Human-readable one-liner for status responses, e.g. "Your
 * submission is waiting for a worker." — the status verb returns it
 * next to the machine-readable state name.
 */
const char* submissionStateDescription(SubmissionState state);

/** Is this state final (result available / no further transitions,
 *  modulo the drain requeue edge on kWaiting)? */
bool submissionStateTerminal(SubmissionState state);

/** Map a finished run's RunStatus onto the terminal submission state. */
SubmissionState submissionStateForRun(sim::RunStatus status);

/**
 * A parsed submit payload: one "run" (single machine shape, first
 * request) or one "sweep" (shape ladder x request grid). Owns the
 * Program — daemon-side it must stay alive for the whole execution,
 * so the daemon heap-allocates the Submission and pins it.
 */
struct Submission
{
    bool isSweep = false;
    /** Original program text (spooled; reparsed on restart). */
    std::string programText;
    Program program{1};
    Topology topo;
    /** The machine ladder; exactly one entry for a "run". */
    std::vector<sim::ShapeSpec> shapes;
    /** The request grid; at least one entry. */
    std::vector<sim::RunRequest> requests;
    /**
     * Service-side cycle ceiling per run, mapped onto
     * RunRequest::pauseAt slices by the daemon; 0 = daemon default.
     * A run that reaches it parks terminal as kBudget.
     */
    Cycle cycleBudget = 0;
    /** Sweep journal checkpoint interval; 0 = daemon default. */
    Cycle checkpointEvery = 0;
    /**
     * Per-request cap on the sweep's worker threads
     * ("sweep_workers"): the effective count is min(this, the
     * daemon's --sweep-workers) when > 0; 0 accepts the daemon
     * default unchanged. A client can shrink its own slice of the
     * box, never grow it. Ignored for single runs.
     */
    int sweepWorkers = 0;
    sim::KernelKind kernel = sim::KernelKind::kEventDriven;
    /** Folded into the sweep journal digest (see ShapeSweepOptions). */
    std::string programVersion;
    /**
     * Optional client-chosen dedup key ("idempotency_key"). Two
     * submits with the same key admit one submission: the second
     * answers with the first's id. This is what makes blind client
     * retries safe — an ack lost to a crashed daemon or dropped
     * connection cannot duplicate work, because the key is spooled
     * with the request line and the index is rebuilt on recovery.
     */
    std::string idempotencyKey;
};

/**
 * Parse and validate the "submit" request object in @p msg (the full
 * request line, verb included). On failure @p error names the field;
 * nothing about the daemon is consulted — this is pure payload
 * validation, shared by the daemon's admission path and the spool
 * recovery path.
 */
bool parseSubmission(const JsonValue& msg, Submission& out,
                     std::string& error);

/**
 * A parsed "lint" request: run the simlint static analysis
 * (core/analyze.h) over a (program, topology, shape) triple without
 * admitting any work. Shares the submit payload's program/topology/
 * shape grammar, so a client can lint exactly what it would submit;
 * the daemon answers with the rendered AnalysisReport (serve/lint.h)
 * and reuses/populates the compile cache under the same digest a
 * later submit would hit.
 */
struct LintRequest
{
    std::string programText;
    Program program{1};
    Topology topo;
    /** The machine shape to analyze against (defaults as in submit). */
    sim::ShapeSpec shape;
    std::string programVersion;
};

/** Parse and validate a "lint" request line; pure payload validation
 *  like parseSubmission. */
bool parseLintRequest(const JsonValue& msg, LintRequest& out,
                      std::string& error);

/** Uint64 digests travel as "0x%016x" hex strings on the wire. */
std::string hexDigest(std::uint64_t digest);

} // namespace syscomm::serve
