#include "serve/protocol.h"

#include <cstdio>

#include "text/parser.h"

namespace syscomm::serve {

const char*
verbName(Verb verb)
{
    switch (verb) {
      case Verb::kPing:
        return "ping";
      case Verb::kSubmit:
        return "submit";
      case Verb::kStatus:
        return "status";
      case Verb::kResult:
        return "result";
      case Verb::kCancel:
        return "cancel";
      case Verb::kDrain:
        return "drain";
      case Verb::kStats:
        return "stats";
      case Verb::kLint:
        return "lint";
    }
    return "?";
}

bool
parseVerb(const std::string& name, Verb& out)
{
    static constexpr Verb kAll[] = {
        Verb::kPing,   Verb::kSubmit, Verb::kStatus, Verb::kResult,
        Verb::kCancel, Verb::kDrain,  Verb::kStats,  Verb::kLint,
    };
    for (Verb verb : kAll) {
        if (name == verbName(verb)) {
            out = verb;
            return true;
        }
    }
    return false;
}

const char*
submissionStateName(SubmissionState state)
{
    switch (state) {
      case SubmissionState::kWaiting:
        return "waiting";
      case SubmissionState::kCompiling:
        return "compiling";
      case SubmissionState::kRunning:
        return "running";
      case SubmissionState::kCompleted:
        return "completed";
      case SubmissionState::kDeadlocked:
        return "deadlocked";
      case SubmissionState::kFaulted:
        return "faulted";
      case SubmissionState::kBudget:
        return "budget-exhausted";
      case SubmissionState::kRejected:
        return "rejected";
      case SubmissionState::kCancelled:
        return "cancelled";
      case SubmissionState::kError:
        return "error";
    }
    return "?";
}

bool
parseSubmissionState(const std::string& name, SubmissionState& out)
{
    for (int i = 0; i < kNumSubmissionStates; ++i) {
        auto state = static_cast<SubmissionState>(i);
        if (name == submissionStateName(state)) {
            out = state;
            return true;
        }
    }
    return false;
}

const char*
submissionStateDescription(SubmissionState state)
{
    switch (state) {
      case SubmissionState::kWaiting:
        return "Your submission is waiting for a worker.";
      case SubmissionState::kCompiling:
        return "Your program is being compiled.";
      case SubmissionState::kRunning:
        return "Your submission is running.";
      case SubmissionState::kCompleted:
        return "Your submission has finished; fetch it with 'result'.";
      case SubmissionState::kDeadlocked:
        return "The simulated machine deadlocked; the deadlock report "
               "is in the result.";
      case SubmissionState::kFaulted:
        return "Injected faults froze the simulated machine.";
      case SubmissionState::kBudget:
        return "Your submission exhausted its cycle budget.";
      case SubmissionState::kRejected:
        return "Your submission was rejected at admission.";
      case SubmissionState::kCancelled:
        return "Your submission was cancelled.";
      case SubmissionState::kError:
        return "Your submission failed; see the error in the result.";
    }
    return "?";
}

bool
submissionStateTerminal(SubmissionState state)
{
    switch (state) {
      case SubmissionState::kWaiting:
      case SubmissionState::kCompiling:
      case SubmissionState::kRunning:
        return false;
      default:
        return true;
    }
}

SubmissionState
submissionStateForRun(sim::RunStatus status)
{
    switch (status) {
      case sim::RunStatus::kCompleted:
        return SubmissionState::kCompleted;
      case sim::RunStatus::kDeadlocked:
        return SubmissionState::kDeadlocked;
      case sim::RunStatus::kFaulted:
        return SubmissionState::kFaulted;
      case sim::RunStatus::kMaxCycles:
        return SubmissionState::kBudget;
      case sim::RunStatus::kConfigError:
        return SubmissionState::kError;
      case sim::RunStatus::kPaused:
        // A paused run is not terminal; callers only map terminal
        // statuses. Treat a leak as an error rather than lying.
        return SubmissionState::kError;
    }
    return SubmissionState::kError;
}

namespace {

bool
parseTopology(const JsonValue& spec, Topology& out, std::string& error)
{
    if (!spec.isObject()) {
        error = "topology: expected an object";
        return false;
    }
    const std::string kind = spec.getString("kind");
    const auto cells = spec.getInt("cells", 0);
    const auto rows = spec.getInt("rows", 0);
    const auto cols = spec.getInt("cols", 0);
    // Bound construction cost before building: a million-cell mesh is
    // legitimate, a hostile 2^62 is not.
    constexpr std::int64_t kMaxCells = 4'000'000;
    if (kind == "linear" || kind == "ring") {
        if (cells < (kind == "ring" ? 3 : 1) || cells > kMaxCells) {
            error = "topology: bad 'cells' for kind '" + kind + "'";
            return false;
        }
        out = kind == "ring" ? Topology::ring(int(cells))
                             : Topology::linearArray(int(cells));
        return true;
    }
    if (kind == "mesh" || kind == "torus") {
        const std::int64_t minSide = kind == "torus" ? 3 : 1;
        if (rows < minSide || cols < minSide ||
            rows * cols > kMaxCells) {
            error = "topology: bad 'rows'/'cols' for kind '" + kind +
                    "'";
            return false;
        }
        out = kind == "torus" ? Topology::torus(int(rows), int(cols))
                              : Topology::mesh(int(rows), int(cols));
        return true;
    }
    error = kind.empty() ? "topology: missing 'kind'"
                         : "topology: unknown kind '" + kind + "'";
    return false;
}

bool
parseShape(const JsonValue& spec, sim::ShapeSpec& out,
           std::string& error)
{
    if (!spec.isObject()) {
        error = "shape: expected an object";
        return false;
    }
    out.name = spec.getString("name");
    const auto queues = spec.getInt("queues", 2);
    const auto capacity = spec.getInt("capacity", 1);
    const auto extension = spec.getInt("extension", 0);
    const auto penalty = spec.getInt("penalty", 4);
    if (queues < 1 || queues > 1024 || capacity < 1 ||
        capacity > 1'000'000 || extension < 0 ||
        extension > 1'000'000 || penalty < 0 || penalty > 1'000'000) {
        error = "shape: parameter out of range";
        return false;
    }
    out.queuesPerLink = int(queues);
    out.queueCapacity = int(capacity);
    out.extensionCapacity = int(extension);
    out.extensionPenalty = int(penalty);
    if (out.name.empty())
        out.name = "q=" + std::to_string(out.queuesPerLink) +
                   ",cap=" + std::to_string(out.queueCapacity);
    return true;
}

bool
parseRequest(const JsonValue& spec, sim::RunRequest& out,
             std::string& error)
{
    if (!spec.isObject()) {
        error = "request: expected an object";
        return false;
    }
    const std::string policy = spec.getString("policy", "compatible");
    bool known = false;
    for (int i = 0; i < sim::kNumPolicyKinds; ++i) {
        auto kind = static_cast<sim::PolicyKind>(i);
        if (policy == sim::policyKindName(kind)) {
            out.policy = kind;
            known = true;
            break;
        }
    }
    if (!known) {
        error = "request: unknown policy '" + policy + "'";
        return false;
    }
    out.seed = static_cast<std::uint64_t>(spec.getInt("seed", 1));
    const auto maxCycles = spec.getInt("max_cycles", 1'000'000);
    if (maxCycles < 1) {
        error = "request: bad 'max_cycles'";
        return false;
    }
    out.maxCycles = maxCycles;
    // Everything else (collect, observers, faults, pauseAt) is
    // daemon-owned: stats-only runs are the journalable, resumable
    // class, and pauseAt is how the daemon slices budgets in.
    return true;
}

} // namespace

bool
parseSubmission(const JsonValue& msg, Submission& out,
                std::string& error)
{
    if (!msg.isObject()) {
        error = "submit: expected an object";
        return false;
    }
    const std::string kind = msg.getString("kind", "run");
    if (kind != "run" && kind != "sweep") {
        error = "submit: 'kind' must be \"run\" or \"sweep\"";
        return false;
    }
    out.isSweep = kind == "sweep";

    out.programText = msg.getString("program");
    if (out.programText.empty()) {
        error = "submit: missing 'program' text";
        return false;
    }
    text::ParseResult parsed = text::parseProgram(out.programText);
    if (!parsed.ok) {
        error = "submit: program: " + parsed.error;
        return false;
    }
    out.program = std::move(parsed.program);

    const JsonValue* topoSpec = msg.find("topology");
    if (topoSpec == nullptr) {
        error = "submit: missing 'topology'";
        return false;
    }
    if (!parseTopology(*topoSpec, out.topo, error))
        return false;
    if (out.program.numCells() != out.topo.numCells()) {
        error = "submit: program has " +
                std::to_string(out.program.numCells()) +
                " cells but topology has " +
                std::to_string(out.topo.numCells());
        return false;
    }

    out.shapes.clear();
    if (out.isSweep) {
        const JsonValue* shapes = msg.find("shapes");
        if (shapes == nullptr || !shapes->isArray() ||
            shapes->items().empty()) {
            error = "submit: sweep needs a non-empty 'shapes' array";
            return false;
        }
        constexpr std::size_t kMaxShapes = 4096;
        if (shapes->items().size() > kMaxShapes) {
            error = "submit: too many shapes";
            return false;
        }
        for (const JsonValue& spec : shapes->items()) {
            sim::ShapeSpec shape;
            if (!parseShape(spec, shape, error))
                return false;
            out.shapes.push_back(std::move(shape));
        }
    } else {
        sim::ShapeSpec shape;
        const JsonValue* spec = msg.find("shape");
        if (spec != nullptr) {
            if (!parseShape(*spec, shape, error))
                return false;
        }
        out.shapes.push_back(std::move(shape));
    }

    out.requests.clear();
    const JsonValue* requests = msg.find("requests");
    if (requests == nullptr) {
        out.requests.emplace_back(); // one default request
    } else {
        if (!requests->isArray() || requests->items().empty()) {
            error = "submit: 'requests' must be a non-empty array";
            return false;
        }
        constexpr std::size_t kMaxRequests = 4096;
        if (requests->items().size() > kMaxRequests) {
            error = "submit: too many requests";
            return false;
        }
        for (const JsonValue& spec : requests->items()) {
            sim::RunRequest request;
            if (!parseRequest(spec, request, error))
                return false;
            out.requests.push_back(std::move(request));
        }
    }

    const auto budget = msg.getInt("cycle_budget", 0);
    const auto checkpointEvery = msg.getInt("checkpoint_every", 0);
    if (budget < 0 || checkpointEvery < 0) {
        error = "submit: negative cycle budget";
        return false;
    }
    out.cycleBudget = budget;
    out.checkpointEvery = checkpointEvery;

    const auto sweepWorkers = msg.getInt("sweep_workers", 0);
    constexpr std::int64_t kMaxSweepWorkers = 1024;
    if (sweepWorkers < 0 || sweepWorkers > kMaxSweepWorkers) {
        error = "submit: sweep_workers out of range";
        return false;
    }
    out.sweepWorkers = static_cast<int>(sweepWorkers);

    const std::string kernel = msg.getString("kernel", "event");
    if (kernel == "event") {
        out.kernel = sim::KernelKind::kEventDriven;
    } else if (kernel == "reference") {
        out.kernel = sim::KernelKind::kReference;
    } else {
        error = "submit: unknown kernel '" + kernel + "'";
        return false;
    }

    out.programVersion = msg.getString("program_version");
    out.idempotencyKey = msg.getString("idempotency_key");
    if (out.idempotencyKey.size() > 256) {
        error = "submit: idempotency_key longer than 256 bytes";
        return false;
    }
    return true;
}

bool
parseLintRequest(const JsonValue& msg, LintRequest& out,
                 std::string& error)
{
    if (!msg.isObject()) {
        error = "lint: expected an object";
        return false;
    }
    out.programText = msg.getString("program");
    if (out.programText.empty()) {
        error = "lint: missing 'program' text";
        return false;
    }
    text::ParseResult parsed = text::parseProgram(out.programText);
    if (!parsed.ok) {
        error = "lint: program: " + parsed.error;
        return false;
    }
    out.program = std::move(parsed.program);

    const JsonValue* topoSpec = msg.find("topology");
    if (topoSpec == nullptr) {
        error = "lint: missing 'topology'";
        return false;
    }
    if (!parseTopology(*topoSpec, out.topo, error))
        return false;
    if (out.program.numCells() != out.topo.numCells()) {
        error = "lint: program has " +
                std::to_string(out.program.numCells()) +
                " cells but topology has " +
                std::to_string(out.topo.numCells());
        return false;
    }

    const JsonValue* spec = msg.find("shape");
    if (spec != nullptr && !parseShape(*spec, out.shape, error))
        return false;
    out.programVersion = msg.getString("program_version");
    return true;
}

std::string
hexDigest(std::uint64_t digest)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

} // namespace syscomm::serve
