#pragma once

/**
 * @file
 * Minimal JSON values for the syscommd wire protocol (serve/).
 *
 * The daemon speaks newline-delimited JSON; this is the small,
 * dependency-free value type both ends parse into and render from.
 * Scope is deliberately narrow: UTF-8 pass-through (no surrogate
 * validation), numbers as int64 when the token is integral (seeds and
 * cycle counts must round-trip exactly) and double otherwise, objects
 * as insertion-ordered member vectors (responses render in a stable
 * order, and the linear find is fine at protocol-object sizes).
 * Parsing is defensive, never trusting the peer: depth-limited,
 * length-checked, and every failure is a clean error string — a
 * malformed or truncated line must never take the daemon down.
 */

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace syscomm::serve {

class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        kNull = 0,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default; ///< null

    static JsonValue boolean(bool v);
    static JsonValue number(double v);
    static JsonValue integer(std::int64_t v);
    static JsonValue str(std::string v);
    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::kNull; }
    bool isBool() const { return kind_ == Kind::kBool; }
    bool isNumber() const { return kind_ == Kind::kNumber; }
    bool isString() const { return kind_ == Kind::kString; }
    bool isArray() const { return kind_ == Kind::kArray; }
    bool isObject() const { return kind_ == Kind::kObject; }

    bool asBool() const { return bool_; }
    double asDouble() const { return integral_ ? double(int_) : num_; }
    std::int64_t asInt64() const
    {
        return integral_ ? int_ : static_cast<std::int64_t>(num_);
    }
    /** Was the number written without fraction/exponent? */
    bool isIntegral() const { return kind_ == Kind::kNumber && integral_; }
    const std::string& asString() const { return string_; }

    std::vector<JsonValue>& items() { return items_; }
    const std::vector<JsonValue>& items() const { return items_; }
    std::vector<Member>& members() { return members_; }
    const std::vector<Member>& members() const { return members_; }

    /** Append to an array (coerces a null to an array first). */
    JsonValue& push(JsonValue v);

    /**
     * Set a member on an object (coerces a null to an object first;
     * replaces an existing key, else appends). Returns *this so
     * response-building chains.
     */
    JsonValue& set(std::string key, JsonValue v);

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue* find(std::string_view key) const;

    // Typed member getters with defaults — the protocol reader's
    // bread and butter. A present-but-wrong-typed member returns the
    // default like an absent one; strict checks live in the protocol
    // parser where the error message can say which field.
    bool getBool(std::string_view key, bool def) const;
    std::int64_t getInt(std::string_view key, std::int64_t def) const;
    double getNumber(std::string_view key, double def) const;
    std::string getString(std::string_view key,
                          const std::string& def = "") const;

  private:
    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    bool integral_ = false;
    double num_ = 0.0;
    std::int64_t int_ = 0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<Member> members_;
};

struct JsonParseOptions
{
    /** Nesting limit; protocol objects are ~3 deep. */
    std::size_t maxDepth = 32;
};

/**
 * Parse one JSON document from @p text (surrounding whitespace
 * allowed, trailing garbage is an error). On failure @p error names
 * the problem and byte offset and @p out is left null.
 */
bool parseJson(std::string_view text, JsonValue& out, std::string& error,
               const JsonParseOptions& options = {});

/** Render compactly on one line (the wire format; no newline added). */
std::string writeJson(const JsonValue& value);

} // namespace syscomm::serve
