#include "serve/io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>

#include <unistd.h>

namespace syscomm::serve {

namespace fs = std::filesystem;

const char*
fsyncPolicyName(FsyncPolicy policy)
{
    switch (policy) {
    case FsyncPolicy::kNone: return "none";
    case FsyncPolicy::kMarkers: return "markers";
    case FsyncPolicy::kAlways: return "always";
    }
    return "none";
}

bool
parseFsyncPolicy(const std::string& text, FsyncPolicy& out)
{
    if (text == "none") {
        out = FsyncPolicy::kNone;
    } else if (text == "markers") {
        out = FsyncPolicy::kMarkers;
    } else if (text == "always") {
        out = FsyncPolicy::kAlways;
    } else {
        return false;
    }
    return true;
}

struct IoFile
{
    std::FILE* fp = nullptr;
    std::string path;
};

namespace {

std::string
errnoText(const std::string& path)
{
    return path + ": " + std::strerror(errno);
}

/** The production passthrough: C stdio + std::filesystem, no state. */
class SystemIo final : public Io
{
  public:
    IoFile*
    openWrite(const std::string& path, bool append,
              std::string& error) override
    {
        std::FILE* fp = std::fopen(path.c_str(), append ? "ab" : "wb");
        if (fp == nullptr) {
            error = errnoText(path);
            return nullptr;
        }
        return new IoFile{fp, path};
    }

    bool
    write(IoFile* file, const void* data, std::size_t len,
          std::string& error) override
    {
        if (len == 0)
            return true;
        if (std::fwrite(data, 1, len, file->fp) != len) {
            error = errnoText(file->path);
            return false;
        }
        return true;
    }

    bool
    flush(IoFile* file, std::string& error) override
    {
        if (std::fflush(file->fp) != 0) {
            error = errnoText(file->path);
            return false;
        }
        return true;
    }

    bool
    sync(IoFile* file, std::string& error) override
    {
        if (std::fflush(file->fp) != 0 ||
            ::fsync(::fileno(file->fp)) != 0) {
            error = errnoText(file->path);
            return false;
        }
        return true;
    }

    void
    close(IoFile* file) override
    {
        if (file == nullptr)
            return;
        std::fclose(file->fp);
        delete file;
    }

    bool
    rename(const std::string& from, const std::string& to,
           std::string& error) override
    {
        std::error_code ec;
        fs::rename(from, to, ec);
        if (ec) {
            error = from + " -> " + to + ": " + ec.message();
            return false;
        }
        return true;
    }

    bool
    truncate(const std::string& path, std::uint64_t size,
             std::string& error) override
    {
        std::error_code ec;
        fs::resize_file(path, size, ec);
        if (ec) {
            error = path + ": " + ec.message();
            return false;
        }
        return true;
    }

    bool
    remove(const std::string& path) override
    {
        std::error_code ec;
        fs::remove(path, ec);
        return !ec;
    }

    bool
    readFile(const std::string& path, std::string& out,
             std::string& error) override
    {
        std::FILE* fp = std::fopen(path.c_str(), "rb");
        if (fp == nullptr) {
            error = errnoText(path);
            return false;
        }
        out.clear();
        char buffer[1 << 16];
        std::size_t got = 0;
        while ((got = std::fread(buffer, 1, sizeof buffer, fp)) > 0)
            out.append(buffer, got);
        const bool ok = std::ferror(fp) == 0;
        if (!ok)
            error = errnoText(path);
        std::fclose(fp);
        return ok;
    }
};

/** splitmix64 — seeds the torn-write prefix lengths. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

Io&
Io::system()
{
    static SystemIo io;
    return io;
}

bool
writeFileAtomicIo(Io& io, const std::string& path,
                  const std::string& data, FsyncPolicy policy,
                  std::string& error)
{
    const std::string tmp = path + ".tmp";
    IoFile* file = io.openWrite(tmp, /*append=*/false, error);
    if (file == nullptr)
        return false;
    bool ok = io.write(file, data.data(), data.size(), error);
    if (ok)
        ok = io.flush(file, error);
    if (ok && policy != FsyncPolicy::kNone)
        ok = io.sync(file, error);
    io.close(file);
    if (!ok || !io.rename(tmp, path, error)) {
        // No orphans on the failure path. (A *crash* mid-write can
        // still leave a .tmp behind — spool recovery sweeps those.)
        io.remove(tmp);
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// FaultyIo

struct FaultyIoState
{
    mutable std::mutex mu;
    IoFaultKind kind = IoFaultKind::kNone;
    std::uint64_t atOp = 0;
    std::uint64_t seed = 0;
    std::uint64_t ops = 0;
    bool dead = false;   // kCrash fired: the disk is gone
    bool enospc = false; // sticky until clearFault()
    bool fired = false;  // one-shot faults (kEio, kShortWrite) spent
};

namespace {

/** What a mutating op should do once the schedule has been consulted. */
enum class Act : std::uint8_t {
    kPass, ///< delegate to the real io
    kFail, ///< fail with error, no side effects
    kTorn, ///< write a seeded prefix, then fail
};

} // namespace

FaultyIo::FaultyIo(IoFaultKind kind, std::uint64_t atOp,
                   std::uint64_t seed)
    : state_(new FaultyIoState)
{
    state_->kind = kind;
    state_->atOp = atOp;
    state_->seed = seed;
}

FaultyIo::~FaultyIo() = default;

namespace {

// Consult the schedule for one mutating op. The only place that
// advances the counter, so profiling and replay runs agree on op
// indices.
Act
stepSchedule(FaultyIoState& s, std::string& error)
{
    if (s.dead) {
        error = "simulated crash: io is dead";
        return Act::kFail;
    }
    if (s.enospc) {
        error = "no space left on device (simulated ENOSPC)";
        return Act::kFail;
    }
    ++s.ops;
    if (s.kind == IoFaultKind::kNone || s.fired || s.ops != s.atOp)
        return Act::kPass;
    switch (s.kind) {
    case IoFaultKind::kCrash:
        s.dead = true;
        error = "simulated crash at io op " + std::to_string(s.ops);
        return Act::kTorn;
    case IoFaultKind::kEio:
        s.fired = true;
        error = "input/output error (simulated EIO)";
        return Act::kFail;
    case IoFaultKind::kEnospc:
        s.enospc = true;
        error = "no space left on device (simulated ENOSPC)";
        return Act::kFail;
    case IoFaultKind::kShortWrite:
        s.fired = true;
        error = "short write (simulated)";
        return Act::kTorn;
    case IoFaultKind::kNone:
        break;
    }
    return Act::kPass;
}

} // namespace

IoFile*
FaultyIo::openWrite(const std::string& path, bool append,
                    std::string& error)
{
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->dead) {
        error = "simulated crash: io is dead";
        return nullptr;
    }
    return Io::system().openWrite(path, append, error);
}

bool
FaultyIo::write(IoFile* file, const void* data, std::size_t len,
                std::string& error)
{
    std::lock_guard<std::mutex> lock(state_->mu);
    const Act act = stepSchedule(*state_, error);
    if (act == Act::kPass)
        return Io::system().write(file, data, len, error);
    if (act == Act::kTorn && len > 0) {
        // A torn write persists a deterministic strict prefix — the
        // exact artifact a power cut leaves — then reports failure.
        const std::size_t prefix = static_cast<std::size_t>(
            mix64(state_->seed ^ state_->ops) % len);
        std::string ignored;
        if (prefix > 0 &&
            Io::system().write(file, data, prefix, ignored))
            Io::system().flush(file, ignored);
    }
    return false;
}

bool
FaultyIo::flush(IoFile* file, std::string& error)
{
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->dead) {
        error = "simulated crash: io is dead";
        return false;
    }
    return Io::system().flush(file, error);
}

bool
FaultyIo::sync(IoFile* file, std::string& error)
{
    std::lock_guard<std::mutex> lock(state_->mu);
    const Act act = stepSchedule(*state_, error);
    if (act != Act::kPass)
        return false;
    return Io::system().sync(file, error);
}

void
FaultyIo::close(IoFile* file)
{
    Io::system().close(file);
}

bool
FaultyIo::rename(const std::string& from, const std::string& to,
                 std::string& error)
{
    std::lock_guard<std::mutex> lock(state_->mu);
    const Act act = stepSchedule(*state_, error);
    if (act != Act::kPass)
        return false;
    return Io::system().rename(from, to, error);
}

bool
FaultyIo::truncate(const std::string& path, std::uint64_t size,
                   std::string& error)
{
    std::lock_guard<std::mutex> lock(state_->mu);
    const Act act = stepSchedule(*state_, error);
    if (act != Act::kPass)
        return false;
    return Io::system().truncate(path, size, error);
}

bool
FaultyIo::remove(const std::string& path)
{
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->dead)
        return false; // a crashed process deletes nothing
    return Io::system().remove(path);
}

bool
FaultyIo::readFile(const std::string& path, std::string& out,
                   std::string& error)
{
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->dead) {
        error = "simulated crash: io is dead";
        return false;
    }
    return Io::system().readFile(path, out, error);
}

std::uint64_t
FaultyIo::opCount() const
{
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->ops;
}

bool
FaultyIo::crashed() const
{
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->dead;
}

void
FaultyIo::clearFault()
{
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->enospc = false;
}

} // namespace syscomm::serve
