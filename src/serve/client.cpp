#include "serve/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/protocol.h"

namespace syscomm::serve {

ServeClient::~ServeClient()
{
    close();
}

bool
ServeClient::connectUnix(const std::string& path, std::string& error)
{
    close();
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error = "socket: " + std::string(strerror(errno));
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        error = "socket path too long";
        close();
        return false;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        error = "connect(" + path + "): " + strerror(errno);
        close();
        return false;
    }
    return true;
}

bool
ServeClient::connectTcp(const std::string& host, int port,
                        std::string& error)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error = "socket: " + std::string(strerror(errno));
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        error = "bad address: " + host;
        close();
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        error = "connect(" + host + ":" + std::to_string(port) +
                "): " + strerror(errno);
        close();
        return false;
    }
    return true;
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    pending_.clear();
}

bool
ServeClient::sendBytes(const std::string& bytes)
{
    if (fd_ < 0)
        return false;
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        ssize_t n = ::send(fd_, bytes.data() + sent,
                           bytes.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
ServeClient::readLine(std::string& line, std::string& error)
{
    for (;;) {
        const std::size_t pos = pending_.find('\n');
        if (pos != std::string::npos) {
            line = pending_.substr(0, pos);
            pending_.erase(0, pos + 1);
            return true;
        }
        char buf[4096];
        ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            error = n == 0 ? "connection closed by daemon"
                           : "recv: " + std::string(strerror(errno));
            return false;
        }
        pending_.append(buf, static_cast<std::size_t>(n));
    }
}

bool
ServeClient::roundTrip(const std::string& line,
                       std::string& responseLine, std::string& error)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }
    if (!sendBytes(line + "\n")) {
        error = "send failed: " + std::string(strerror(errno));
        return false;
    }
    return readLine(responseLine, error);
}

bool
ServeClient::request(const JsonValue& message, JsonValue& response,
                     std::string& error)
{
    std::string line;
    if (!roundTrip(writeJson(message), line, error))
        return false;
    if (!parseJson(line, response, error)) {
        error = "bad response: " + error;
        return false;
    }
    return true;
}

bool
ServeClient::ping(JsonValue& response, std::string& error)
{
    JsonValue msg = JsonValue::object();
    msg.set("verb", JsonValue::str("ping"));
    return request(msg, response, error);
}

bool
ServeClient::submit(const JsonValue& submission, std::string& id,
                    JsonValue& response, std::string& error)
{
    JsonValue msg = submission; // body plus the verb
    msg.set("verb", JsonValue::str("submit"));
    if (!request(msg, response, error))
        return false;
    id = response.getString("id");
    return true;
}

namespace {

JsonValue
idRequest(const char* verb, const std::string& id)
{
    JsonValue msg = JsonValue::object();
    msg.set("verb", JsonValue::str(verb));
    msg.set("id", JsonValue::str(id));
    return msg;
}

} // namespace

bool
ServeClient::status(const std::string& id, JsonValue& response,
                    std::string& error)
{
    return request(idRequest("status", id), response, error);
}

bool
ServeClient::result(const std::string& id, JsonValue& response,
                    std::string& error)
{
    return request(idRequest("result", id), response, error);
}

bool
ServeClient::cancel(const std::string& id, JsonValue& response,
                    std::string& error)
{
    return request(idRequest("cancel", id), response, error);
}

bool
ServeClient::drain(JsonValue& response, std::string& error)
{
    JsonValue msg = JsonValue::object();
    msg.set("verb", JsonValue::str("drain"));
    return request(msg, response, error);
}

bool
ServeClient::stats(JsonValue& response, std::string& error)
{
    JsonValue msg = JsonValue::object();
    msg.set("verb", JsonValue::str("stats"));
    return request(msg, response, error);
}

bool
ServeClient::waitTerminal(const std::string& id, int timeoutMs,
                          JsonValue& response, std::string& error,
                          bool stopOnParked)
{
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeoutMs);
    int sleepMs = 1;
    for (;;) {
        if (!status(id, response, error))
            return false;
        if (!response.getBool("ok", false)) {
            error = response.getString("error", "status failed");
            return false;
        }
        const std::string state = response.getString("state");
        SubmissionState parsed = SubmissionState::kWaiting;
        if (parseSubmissionState(state, parsed) &&
            submissionStateTerminal(parsed))
            return true;
        if (stopOnParked && parsed == SubmissionState::kWaiting)
            return true;
        if (Clock::now() >= deadline) {
            error = "timeout waiting for " + id + " (state " + state +
                    ")";
            return false;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(sleepMs));
        sleepMs = std::min(sleepMs * 2, 50);
    }
}

} // namespace syscomm::serve
