#include "serve/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/protocol.h"

namespace syscomm::serve {

namespace {

/** splitmix64: the deterministic jitter source for retry backoff. */
std::uint64_t
mixJitter(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Backoff for (0-based) retry @p attempt: exp growth, seeded jitter. */
int
backoffDelayMs(const RetryOptions& retry, int attempt)
{
    std::int64_t base = retry.baseDelayMs;
    for (int i = 0; i < attempt && base < retry.maxDelayMs; ++i)
        base *= 2;
    base = std::min<std::int64_t>(base, retry.maxDelayMs);
    if (base <= 0)
        return 0;
    const std::uint64_t jitter =
        mixJitter(retry.jitterSeed ^
                  static_cast<std::uint64_t>(attempt)) %
        static_cast<std::uint64_t>(base);
    // Full jitter halved around base: [base/2, base + base/2).
    return static_cast<int>(base / 2 + static_cast<std::int64_t>(jitter));
}

} // namespace

ServeClient::~ServeClient()
{
    close();
}

void
ServeClient::setTimeouts(int connectMs, int ioMs)
{
    connectTimeoutMs_ = std::max(0, connectMs);
    ioTimeoutMs_ = std::max(0, ioMs);
    if (fd_ >= 0)
        applyIoTimeout();
}

void
ServeClient::applyIoTimeout()
{
    if (ioTimeoutMs_ <= 0)
        return;
    timeval tv{};
    tv.tv_sec = ioTimeoutMs_ / 1000;
    tv.tv_usec = (ioTimeoutMs_ % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/**
 * Drive a possibly-in-progress nonblocking connect to a verdict
 * within connectTimeoutMs_, then restore blocking mode.
 */
bool
ServeClient::finishConnect(std::string& error)
{
    pollfd pfd{fd_, POLLOUT, 0};
    const int r = ::poll(&pfd, 1, connectTimeoutMs_);
    if (r <= 0) {
        error = r == 0 ? "connect timeout"
                       : "poll: " + std::string(strerror(errno));
        return false;
    }
    int soError = 0;
    socklen_t len = sizeof(soError);
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soError, &len) != 0 ||
        soError != 0) {
        error = "connect: " +
                std::string(strerror(soError != 0 ? soError : errno));
        return false;
    }
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd_, F_SETFL, flags & ~O_NONBLOCK);
    return true;
}

bool
ServeClient::connectUnix(const std::string& path, std::string& error)
{
    close();
    endpoint_ = Endpoint::kUnix;
    endpointPath_ = path;
    endpointPort_ = -1;
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error = "socket: " + std::string(strerror(errno));
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        error = "socket path too long";
        close();
        return false;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (connectTimeoutMs_ > 0) {
        const int flags = ::fcntl(fd_, F_GETFL, 0);
        if (flags >= 0)
            ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        if (connectTimeoutMs_ > 0 && errno == EINPROGRESS) {
            if (!finishConnect(error)) {
                error = "connect(" + path + "): " + error;
                close();
                return false;
            }
            applyIoTimeout();
            return true;
        }
        error = "connect(" + path + "): " + strerror(errno);
        close();
        return false;
    }
    if (connectTimeoutMs_ > 0) {
        const int flags = ::fcntl(fd_, F_GETFL, 0);
        if (flags >= 0)
            ::fcntl(fd_, F_SETFL, flags & ~O_NONBLOCK);
    }
    applyIoTimeout();
    return true;
}

bool
ServeClient::connectTcp(const std::string& host, int port,
                        std::string& error)
{
    close();
    endpoint_ = Endpoint::kTcp;
    endpointPath_ = host;
    endpointPort_ = port;
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error = "socket: " + std::string(strerror(errno));
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        error = "bad address: " + host;
        close();
        return false;
    }
    if (connectTimeoutMs_ > 0) {
        const int flags = ::fcntl(fd_, F_GETFL, 0);
        if (flags >= 0)
            ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        if (connectTimeoutMs_ > 0 && errno == EINPROGRESS) {
            if (!finishConnect(error)) {
                error = "connect(" + host + ":" +
                        std::to_string(port) + "): " + error;
                close();
                return false;
            }
            applyIoTimeout();
            return true;
        }
        error = "connect(" + host + ":" + std::to_string(port) +
                "): " + strerror(errno);
        close();
        return false;
    }
    if (connectTimeoutMs_ > 0) {
        const int flags = ::fcntl(fd_, F_GETFL, 0);
        if (flags >= 0)
            ::fcntl(fd_, F_SETFL, flags & ~O_NONBLOCK);
    }
    applyIoTimeout();
    return true;
}

bool
ServeClient::reconnect(std::string& error)
{
    switch (endpoint_) {
      case Endpoint::kUnix:
        return connectUnix(endpointPath_, error);
      case Endpoint::kTcp:
        return connectTcp(endpointPath_, endpointPort_, error);
      case Endpoint::kNone:
        break;
    }
    error = "no endpoint to reconnect to";
    return false;
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    pending_.clear();
}

bool
ServeClient::sendBytes(const std::string& bytes)
{
    if (fd_ < 0)
        return false;
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        ssize_t n = ::send(fd_, bytes.data() + sent,
                           bytes.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
ServeClient::readLine(std::string& line, std::string& error)
{
    for (;;) {
        const std::size_t pos = pending_.find('\n');
        if (pos != std::string::npos) {
            line = pending_.substr(0, pos);
            pending_.erase(0, pos + 1);
            return true;
        }
        char buf[4096];
        ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                error = "recv timeout after " +
                        std::to_string(ioTimeoutMs_) + " ms";
            else
                error = n == 0
                            ? "connection closed by daemon"
                            : "recv: " + std::string(strerror(errno));
            return false;
        }
        pending_.append(buf, static_cast<std::size_t>(n));
    }
}

bool
ServeClient::roundTrip(const std::string& line,
                       std::string& responseLine, std::string& error)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }
    if (!sendBytes(line + "\n")) {
        error = "send failed: " + std::string(strerror(errno));
        return false;
    }
    return readLine(responseLine, error);
}

bool
ServeClient::request(const JsonValue& message, JsonValue& response,
                     std::string& error)
{
    std::string line;
    if (!roundTrip(writeJson(message), line, error))
        return false;
    if (!parseJson(line, response, error)) {
        error = "bad response: " + error;
        return false;
    }
    return true;
}

bool
ServeClient::ping(JsonValue& response, std::string& error)
{
    JsonValue msg = JsonValue::object();
    msg.set("verb", JsonValue::str("ping"));
    return request(msg, response, error);
}

bool
ServeClient::submit(const JsonValue& submission, std::string& id,
                    JsonValue& response, std::string& error)
{
    JsonValue msg = submission; // body plus the verb
    msg.set("verb", JsonValue::str("submit"));
    if (!request(msg, response, error))
        return false;
    id = response.getString("id");
    return true;
}

namespace {

JsonValue
idRequest(const char* verb, const std::string& id)
{
    JsonValue msg = JsonValue::object();
    msg.set("verb", JsonValue::str(verb));
    msg.set("id", JsonValue::str(id));
    return msg;
}

} // namespace

bool
ServeClient::status(const std::string& id, JsonValue& response,
                    std::string& error)
{
    return request(idRequest("status", id), response, error);
}

bool
ServeClient::result(const std::string& id, JsonValue& response,
                    std::string& error)
{
    return request(idRequest("result", id), response, error);
}

bool
ServeClient::cancel(const std::string& id, JsonValue& response,
                    std::string& error)
{
    return request(idRequest("cancel", id), response, error);
}

bool
ServeClient::drain(JsonValue& response, std::string& error)
{
    JsonValue msg = JsonValue::object();
    msg.set("verb", JsonValue::str("drain"));
    return request(msg, response, error);
}

bool
ServeClient::stats(JsonValue& response, std::string& error)
{
    JsonValue msg = JsonValue::object();
    msg.set("verb", JsonValue::str("stats"));
    return request(msg, response, error);
}

bool
ServeClient::waitTerminal(const std::string& id, int timeoutMs,
                          JsonValue& response, std::string& error,
                          bool stopOnParked)
{
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeoutMs);
    int sleepMs = 1;
    for (;;) {
        if (!status(id, response, error))
            return false;
        if (!response.getBool("ok", false)) {
            error = response.getString("error", "status failed");
            return false;
        }
        const std::string state = response.getString("state");
        SubmissionState parsed = SubmissionState::kWaiting;
        if (parseSubmissionState(state, parsed) &&
            submissionStateTerminal(parsed))
            return true;
        if (stopOnParked && parsed == SubmissionState::kWaiting)
            return true;
        if (Clock::now() >= deadline) {
            error = "timeout waiting for " + id + " (state " + state +
                    ")";
            return false;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(sleepMs));
        sleepMs = std::min(sleepMs * 2, 50);
    }
}

bool
ServeClient::submitWithRetry(const JsonValue& submission,
                             const RetryOptions& retry,
                             std::string& id, JsonValue& response,
                             std::string& error)
{
    const int attempts = std::max(1, retry.maxAttempts);
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(
                backoffDelayMs(retry, attempt - 1)));
        if (!connected() && !reconnect(error))
            continue; // daemon may still be restarting
        if (!submit(submission, id, response, error)) {
            // Transport failure: the daemon may have taken the
            // submission and died before the ack. The idempotency
            // key makes the resend safe either way.
            close();
            continue;
        }
        if (response.getBool("ok", false))
            return true;
        const std::string rejected = response.getString("rejected");
        const bool retryable = rejected == "queue_full" ||
                               rejected == "degraded" ||
                               rejected == "spool_error";
        if (!retryable) {
            error = response.getString("error", "submit rejected");
            return false;
        }
        error = response.getString("error", rejected);
    }
    error = "submit failed after " + std::to_string(attempts) +
            " attempts: " + error;
    return false;
}

bool
ServeClient::waitTerminalRetry(const std::string& id, int timeoutMs,
                               const RetryOptions& retry,
                               JsonValue& response, std::string& error)
{
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeoutMs);
    int attempt = 0;
    for (;;) {
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now())
                .count();
        if (left <= 0) {
            error = "timeout waiting for " + id;
            return false;
        }
        if (!connected()) {
            if (!reconnect(error)) {
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    std::min<std::int64_t>(
                        left, backoffDelayMs(retry, attempt++))));
                continue;
            }
            attempt = 0;
        }
        if (waitTerminal(id, static_cast<int>(left), response, error))
            return true;
        // "unknown id" is final (a spool-less daemon forgot us);
        // timeouts are final; transport failures mean the daemon is
        // down or restarting — reconnect and resume polling.
        if (connected() && response.isObject() &&
            !response.getString("error").empty())
            return false;
        if (Clock::now() >= deadline) {
            error = "timeout waiting for " + id + ": " + error;
            return false;
        }
        close();
    }
}

} // namespace syscomm::serve
