#pragma once

/**
 * @file
 * Deterministic, injectable IO — the durability chain's one door to
 * the filesystem.
 *
 * Every byte the daemon spool, the ShapeSweep journal and the
 * checkpoint writer persist goes through an Io instance. Production
 * uses Io::system(), a zero-state passthrough over the C/POSIX calls.
 * Tests substitute a FaultyIo with a *seeded fault schedule* — short
 * write, EIO, sticky ENOSPC, or crash-after-op-N — so every syscall
 * point in the durability chain can be killed deterministically and
 * the recovery checked for bit-identical resume (the crash-point fuzz
 * harness enumerates exactly these op counters).
 *
 * The interface is deliberately coarse: open/write/flush/sync/close
 * on an opaque handle, plus whole-file read, rename, truncate and
 * remove. Each *mutating* primitive (write, sync, rename, truncate,
 * atomic-file) advances the op counter by one, which is what a fault
 * schedule indexes. Reads never mutate and are only faulted by EIO
 * schedules.
 *
 * This header lives in serve/ (per the service layering) but is a
 * generic POSIX shim with no serve dependencies; sim/shape_sweep.cpp
 * uses it too — both compile into the single syscomm library.
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace syscomm::serve {

/**
 * When the durability chain calls Io::sync. Default is kNone — the
 * formats are torn-write-proof by construction (CRC-framed,
 * truncate-to-last-good), so fsync buys power-loss durability, not
 * correctness, and tests should not pay for it.
 */
enum class FsyncPolicy : std::uint8_t {
    kNone = 0,   ///< never fsync; OS-level flush only
    kMarkers,    ///< fsync spool files and done-markers, not journal appends
    kAlways,     ///< fsync every journal append too
};

const char* fsyncPolicyName(FsyncPolicy policy);
bool parseFsyncPolicy(const std::string& text, FsyncPolicy& out);

/** Opaque per-open state; concrete Io implementations define it. */
struct IoFile;
struct FaultyIoState;

class Io
{
  public:
    virtual ~Io() = default;

    /** The passthrough singleton used in production. */
    static Io& system();

    /**
     * Open @p path for writing (append or truncate). Returns nullptr
     * with @p error set on failure. Close with close() even on error
     * paths.
     */
    virtual IoFile* openWrite(const std::string& path, bool append,
                              std::string& error) = 0;

    /** Append @p len bytes. One mutating op. Short writes fail. */
    virtual bool write(IoFile* file, const void* data, std::size_t len,
                       std::string& error) = 0;

    /** Push buffered bytes to the OS (fflush). Not a counted op. */
    virtual bool flush(IoFile* file, std::string& error) = 0;

    /** fsync the handle. One mutating op. */
    virtual bool sync(IoFile* file, std::string& error) = 0;

    virtual void close(IoFile* file) = 0;

    /** Atomic replace (POSIX rename semantics). One mutating op. */
    virtual bool rename(const std::string& from, const std::string& to,
                        std::string& error) = 0;

    /** Shrink @p path to @p size bytes. One mutating op. */
    virtual bool truncate(const std::string& path, std::uint64_t size,
                          std::string& error) = 0;

    /** Delete @p path; missing files are not an error. */
    virtual bool remove(const std::string& path) = 0;

    /** Read the whole of @p path. False + error if unreadable. */
    virtual bool readFile(const std::string& path, std::string& out,
                          std::string& error) = 0;
};

/**
 * Write-tmp-then-rename through @p io: the contents of @p path are
 * either the old ones or @p data, never a prefix. The tmp file is
 * removed on every failure path (no orphans). With FsyncPolicy other
 * than kNone the data is fsynced before the rename.
 */
bool writeFileAtomicIo(Io& io, const std::string& path,
                       const std::string& data, FsyncPolicy policy,
                       std::string& error);

/** What a FaultyIo schedule does when its op index comes up. */
enum class IoFaultKind : std::uint8_t {
    kNone = 0,
    kCrash,      ///< torn write at op N, then every later op fails dead
    kEio,        ///< op N alone fails with EIO, no side effects
    kEnospc,     ///< op N and all later mutating ops fail (sticky) until clearFault()
    kShortWrite, ///< op N writes a seeded prefix and reports failure
};

/**
 * A deterministic fault-injecting Io wrapping the real one. All
 * methods are safe to call from the daemon's worker and accept
 * threads concurrently (one internal mutex; the op counter is the
 * serialization point, which is exactly what makes schedules
 * deterministic under a single worker).
 */
class FaultyIo : public Io
{
  public:
    /**
     * Fault fires at the @p atOp -th mutating op (1-based). @p seed
     * drives torn-write prefix lengths. kNone schedules nothing and
     * makes this a counting passthrough.
     */
    FaultyIo(IoFaultKind kind, std::uint64_t atOp, std::uint64_t seed);
    ~FaultyIo() override;

    IoFile* openWrite(const std::string& path, bool append,
                      std::string& error) override;
    bool write(IoFile* file, const void* data, std::size_t len,
               std::string& error) override;
    bool flush(IoFile* file, std::string& error) override;
    bool sync(IoFile* file, std::string& error) override;
    void close(IoFile* file) override;
    bool rename(const std::string& from, const std::string& to,
                std::string& error) override;
    bool truncate(const std::string& path, std::uint64_t size,
                  std::string& error) override;
    bool remove(const std::string& path) override;
    bool readFile(const std::string& path, std::string& out,
                  std::string& error) override;

    /** Mutating ops seen so far (profiling pass reads this). */
    std::uint64_t opCount() const;

    /** True once a kCrash schedule has fired: the disk is "gone". */
    bool crashed() const;

    /** Lift a sticky kEnospc fault ("space freed"). */
    void clearFault();

  private:
    std::unique_ptr<FaultyIoState> state_;
};

} // namespace syscomm::serve
