#pragma once

/**
 * @file
 * syscommd: simulation-as-a-service over a line-JSON socket protocol.
 *
 * The daemon accepts program/run/sweep submissions on a Unix and/or
 * TCP stream socket (docs/protocol.md), admits them into a bounded
 * queue — a full queue REJECTS with an explicit "queue_full", it
 * never silently blocks the client — and fans them out to worker
 * threads. Program compilation goes through a shared CompileCache,
 * so N clients submitting the same program over the same topology
 * pay for exactly one CompiledProgram build between them.
 *
 * Every submission walks a deterministic status machine:
 *
 *   waiting -> compiling -> running -> {completed, deadlocked,
 *                                       faulted, budget-exhausted,
 *                                       error}
 *   (+ rejected at admission, cancelled via the cancel verb, and
 *    running -> waiting when a drain parks resumable work)
 *
 * Durability: with a spool directory configured, every admitted
 * submission is persisted before it is acknowledged (its original
 * request line), sweeps journal their progress through ShapeSweep's
 * crash-resume journal, and terminal results are written as done
 * markers. A daemon killed outright (SIGKILL) and restarted on the
 * same spool re-admits unfinished submissions and *resumes* journaled
 * sweeps from their last checkpoint — producing per-row machine
 * digests bit-identical to an uninterrupted daemon (CI kills one mid-
 * sweep to prove it). SIGTERM is the polite version: the lifecycle
 * control word (serve/control.h) flips to draining, admission stops,
 * journaled in-flight sweeps park at their next checkpoint, and the
 * process exits with the spool in a resumable state.
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.h"
#include "serve/control.h"
#include "serve/io.h"
#include "serve/protocol.h"

namespace syscomm::serve {

struct DaemonOptions
{
    /** Unix-domain listening socket path; "" disables. */
    std::string socketPath;
    /**
     * TCP listening port on 127.0.0.1: -1 disables, 0 binds an
     * ephemeral port (read it back with boundTcpPort()).
     */
    int tcpPort = -1;
    /**
     * Spool directory for durability (created if missing); "" runs
     * the daemon in-memory only — no resume after a kill, and drains
     * cannot park sweeps (nothing to journal into).
     */
    std::string spoolDir;
    /** Executor threads. */
    int workers = 2;
    /** Admission bound: waiting submissions beyond this are rejected
     *  with "queue_full". */
    std::size_t maxQueue = 64;
    /** Longest accepted request line; longer closes the connection. */
    std::size_t maxLineBytes = 4u << 20;
    /** Compiled-program cache entries (LRU). */
    std::size_t cacheCapacity = 32;
    /** Service-side cycle ceiling for submissions that set none. */
    Cycle defaultCycleBudget = 50'000'000;
    /**
     * Single runs execute in RunRequest::pauseAt slices of this many
     * cycles, so cancel/drain/budget are honored within a slice.
     */
    Cycle sliceCycles = 100'000;
    /** Default sweep journal checkpoint interval (cycles). */
    Cycle sweepCheckpointEvery = 5'000;
    /**
     * Worker threads *inside* one sweep submission (the
     * --sweep-workers knob): ShapeSweep steals (shape × request)
     * cells across this many threads. 1 (the default) keeps the
     * one-thread-per-submission regime; <= 0 lets each sweep size
     * itself to hardware_concurrency(). A submission's own
     * sweep_workers field can cap — never raise — this. Budget
     * threads as workers × sweepWorkers when sizing a box: every
     * sweep worker honors drain/cancel through the same stop flag,
     * so park/resume semantics are unchanged at any setting. (The
     * watchdog covers single runs only — sweeps already bound their
     * slices with checkpointEvery and park cooperatively.)
     */
    int sweepWorkers = 1;
    /**
     * The IO layer every spool/journal byte goes through. nullptr =
     * the real filesystem; the crash-point fuzz harness injects a
     * FaultyIo here to kill the daemon's durability chain at any
     * enumerated syscall. Must outlive the daemon.
     */
    Io* io = nullptr;
    /** When the spool/journal calls fsync (serve/io.h). */
    FsyncPolicy fsyncPolicy = FsyncPolicy::kNone;
    /**
     * Worker watchdog: a single run whose pause slice makes no
     * progress for this many wall milliseconds is stopped and failed
     * explicitly as an error ("watchdog: ..."), instead of wedging a
     * worker forever. 0 disables. Cooperative: the run must return
     * from its slice for the verdict to land — a thread wedged
     * *inside* the simulator cannot be preempted, but every slice
     * boundary checks.
     */
    std::int64_t watchdogMs = 0;
    /**
     * Admission-time static analysis (core/analyze.h, the --lint
     * knob). kOff skips it entirely. kWarn analyzes every submission
     * at admission and stamps the diagnostics ("lint") onto the
     * terminal result when the analyzer found anything. kEnforce
     * additionally REJECTS submissions whose verdict is "deadlock" —
     * statically certain to wedge on the submitted shape under any
     * policy — before a worker spends a single simulation cycle,
     * with the minimal blocked-cycle witness in the reply
     * (rejected: "lint"). The analysis compiles through the shared
     * CompileCache, so the admitted path's later compile is a pure
     * cache hit and N submissions of one program pay one analysis.
     */
    enum class LintMode : std::uint8_t
    {
        kOff = 0,
        kWarn,
        kEnforce,
    };
    LintMode lintMode = LintMode::kOff;
};

/** Wire/flag name of a lint mode: "off", "warn", "enforce". */
const char* lintModeName(DaemonOptions::LintMode mode);

/** Parse a --lint flag value; false on an unknown name. */
bool parseLintMode(const std::string& name, DaemonOptions::LintMode& out);

class SyscommDaemon
{
  public:
    explicit SyscommDaemon(DaemonOptions options);
    ~SyscommDaemon();

    SyscommDaemon(const SyscommDaemon&) = delete;
    SyscommDaemon& operator=(const SyscommDaemon&) = delete;

    /**
     * Bind sockets, recover the spool (terminal results re-indexed,
     * unfinished submissions re-admitted in id order), start the
     * accept loop and workers. False + @p error on failure.
     */
    bool start(std::string& error);

    /**
     * Graceful drain: stop admitting, ask in-flight work to park.
     * Async-signal-UNSAFE (takes locks) — signal handlers set the
     * control word instead and the owner calls this from its main
     * loop (tools/syscommd_main.cpp does exactly that).
     */
    void requestDrain();

    /** Re-scan the spool for externally dropped submissions (SIGHUP). */
    void reload();

    /** Full shutdown: close sockets, join every thread. Idempotent. */
    void stop();

    /** The lifecycle control word (signal handlers store into it). */
    ServiceControl& control() { return control_; }

    /** Actual TCP port when tcpPort was 0 (else the configured one). */
    int boundTcpPort() const { return boundTcpPort_; }

    /**
     * Wait until no submission is compiling/running and (unless
     * draining) the queue is empty. False on timeout.
     */
    bool waitIdle(int timeoutMs);

    /** The stats verb's response body (tests introspect through it). */
    JsonValue statsJson();

  private:
    struct Sub;

    // -- spool ----------------------------------------------------
    std::string spoolFile(const std::string& id,
                          const char* suffix) const;
    bool recoverSpool(std::string& error);
    void writeDoneMarker(Sub& sub);
    /** Enter/leave reject-new degraded mode (mutex_ must be held). */
    void setDegradedLocked(const std::string& reason);
    void clearDegradedLocked();

    // -- execution ------------------------------------------------
    void workerLoop();
    void watchdogLoop();
    void execute(Sub* sub);
    void executeRun(Sub* sub, const CachedProgram& entry);
    void executeSweep(Sub* sub, const CachedProgram& entry);
    /** Terminal transition + done marker + idle wakeup. */
    void finish(Sub* sub, SubmissionState state, JsonValue result);

    // -- protocol -------------------------------------------------
    void acceptLoop();
    void clientLoop(int fd);
    std::string handleLine(const std::string& line);
    JsonValue handleSubmit(const JsonValue& msg,
                           const std::string& line);
    JsonValue handleStatus(const JsonValue& msg);
    JsonValue handleResult(const JsonValue& msg);
    JsonValue handleCancel(const JsonValue& msg);
    JsonValue handleDrain();
    JsonValue handleLint(const JsonValue& msg);
    /** Journal-derived progress of a sweep submission (running or
     *  parked): rows done + per-row checkpoint headers, via
     *  inspectSweepJournal — no sessions are opened. */
    bool journalProgress(const Sub& sub, JsonValue& out);

    DaemonOptions options_;
    ServiceControl control_;
    CompileCache cache_;
    /** Resolved IO layer (options_.io or Io::system()). */
    Io* io_ = nullptr;

    std::mutex mutex_;
    std::condition_variable workCv_;
    std::condition_variable idleCv_;
    /** id -> submission; ids are dense ("s-000001", ...). */
    std::map<std::string, std::unique_ptr<Sub>> subs_;
    std::deque<Sub*> queue_;
    /** idempotency key -> id: duplicate submits return the same id. */
    std::map<std::string, std::string> idempotency_;
    std::uint64_t nextId_ = 1;
    int active_ = 0; ///< submissions in kCompiling/kRunning
    bool stopping_ = false;
    std::uint64_t rejectedQueueFull_ = 0;
    std::uint64_t rejectedBadRequest_ = 0;
    std::uint64_t rejectedDraining_ = 0;
    std::uint64_t rejectedDegraded_ = 0;
    std::uint64_t rejectedLint_ = 0;
    std::uint64_t watchdogFired_ = 0;
    /**
     * Reject-new/serve-reads mode: set when a spool write, done
     * marker or sweep journal fails (ENOSPC, EIO). New submissions
     * are rejected "degraded"; status/result/stats keep serving.
     * Cleared by reload() (operator freed space) or by the next
     * successful spool write.
     */
    bool degraded_ = false;
    std::string degradedReason_;

    int unixFd_ = -1;
    int tcpFd_ = -1;
    int boundTcpPort_ = -1;
    int wakePipe_[2] = {-1, -1};
    std::thread acceptThread_;
    std::thread watchdogThread_;
    std::vector<std::thread> workerThreads_;
    std::mutex clientMutex_;
    std::vector<std::thread> clientThreads_;
    std::vector<int> clientFds_;
    bool started_ = false;
};

} // namespace syscomm::serve
